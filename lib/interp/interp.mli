(** Reference interpreter for the IR.

    Two roles, exactly as in the paper's methodology:

    - {b ground truth}: MiniC programs are deterministic and input-free, so
      executing the instrumented program once yields the set of markers that
      are actually alive; all remaining markers are dead (Section 4.1 of the
      paper);
    - {b semantic oracle for the pass pipeline}: the interpreter runs both the
      pre-SSA form and optimized SSA code (phis are evaluated per incoming
      edge), so every optimization pass can be checked to preserve the
      sequence of observable events.

    Execution is fuel-bounded; a fuel exhaustion or a runtime trap (out of
    bounds access, dereferencing a non-pointer, use of a dangling frame
    pointer, call-depth overflow) discards the program, mirroring the paper's
    rejection of invalid/UB test cases. *)

type value =
  | Vint of int
  | Vptr of string * int * int
      (** [(symbol, instance, offset)]; instance 0 is the unique instance of a
          global, frame symbols get a fresh instance per activation *)

type event =
  | Ev_extern of string * value list
      (** call to an undefined function; such calls return a deterministic
          hash of the function name and arguments *)
  | Ev_marker of int                  (** marker execution *)

type outcome =
  | Finished of int  (** [main]'s return value *)
  | Trap of string   (** runtime error with explanation *)
  | Out_of_fuel

type result = {
  outcome : outcome;
  events : event list;            (** observable events in execution order *)
  executed_markers : Dce_ir.Ir.Iset.t;   (** marker ids that ran at least once *)
  executed_blocks : Dce_ir.Ir.Bset.t;
      (** (function, block label) pairs entered at least once — block-level
          ground truth for the primary-marker analysis *)
  steps : int;                    (** instructions executed *)
  final_globals : (string * int array) list;
      (** global memory at exit, integer cells only, with pointers hashed to
          stable integers; usable as a semantic checksum *)
}

val run : ?fuel:int -> ?max_depth:int -> Dce_ir.Ir.program -> result
(** Executes [main] (which must exist) with default fuel 2,000,000 steps and
    call depth 256. *)

val equivalent : result -> result -> bool
(** Observational equivalence as a C compiler defines it: same outcome and
    same event sequence (extern calls with argument values, markers, in
    order).  Final memory is {e not} compared — dead store elimination is
    allowed to change it, exactly as in C. *)

val equivalent_strict : result -> result -> bool
(** {!equivalent} plus identical final global memory. Holds for
    transformations that do not remove stores (lowering↔SSA, SCCP, CSE…). *)

(** {1 Shared evaluation semantics}

    Exported so the bytecode VM ({!Dce_exec.Bc_vm}) reuses the exact same
    value semantics — same trap messages, same extern hashing, same
    checksums — rather than reimplementing them and drifting. *)

exception Trap_exn of string
(** Raised internally on a runtime error; {!run} catches it.  Exported so
    alternate executors can share trap plumbing. *)

exception Fuel_exn
(** Raised internally on fuel exhaustion; {!run} catches it. *)

val trap : ('a, unit, string, 'b) format4 -> 'a
(** Formats a message and raises {!Trap_exn}. *)

val truthy : value -> bool
(** Branch condition semantics: nonzero integers and all pointers. *)

val eval_binary : Dce_minic.Ops.binop -> value -> value -> value
(** Binary operator semantics over run-time values, including pointer
    comparison/arithmetic rules.  Raises {!Trap_exn} on incompatible
    operands. *)

val eval_unary : Dce_minic.Ops.unop -> value -> value
(** Unary operator semantics.  Raises {!Trap_exn} on pointer negation. *)

val extern_result : string -> value list -> int
(** Deterministic result of a call to an undefined external function: a
    stable mix of the name and the argument values. *)

val value_of_cell : Dce_ir.Ir.init_cell -> value
(** Run-time value of an initial memory cell. *)

val cell_checksum : value -> int
(** Stable integer encoding of a final memory cell (pointers hash by
    target), used for the [final_globals] checksum. *)
