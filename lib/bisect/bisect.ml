module C = Dce_compiler

type regression = {
  offending : C.Version.commit;
  offending_index : int;
  last_good : int;
  compilations : int;
}

type outcome = Regression of regression | Always_missed | Not_missed

let find_regression_counted ?(search = `Exponential) ?(cache = false) compiler level prog ~marker =
  let head = C.Compiler.head compiler in
  let probes = ref 0 in
  let surviving =
    (* The cached probe goes through the content-addressed compile cache
       keyed by (compiler, version, level, program): it answers for *every*
       marker of the program at once, so bisections of sibling markers share
       compiles.  Memoized compilation is observably identical to fresh
       compilation, so the outcome — and the probe count — is the same
       either way. *)
    if cache then fun v -> C.Compiler.surviving_markers_cached compiler ~version:v level prog
    else fun v -> C.Compiler.surviving_markers compiler ~version:v level prog
  in
  let eliminates version =
    incr probes;
    not (List.mem marker (surviving version))
  in
  let outcome =
    if eliminates head then Not_missed
    else begin
      (* (a) find a good version below HEAD *)
      let good =
        match search with
        | `Linear ->
          let rec down v = if v < 0 then None else if eliminates v then Some v else down (v - 1) in
          down (head - 1)
        | `Exponential ->
          let rec back step =
            let v = head - step in
            if v < 0 then if eliminates 0 then Some 0 else None
            else if eliminates v then Some v
            else back (step * 2)
          in
          back 1
      in
      match good with
      | None -> Always_missed
      | Some g ->
        (* (b) first bad version in (g, head]; monotonicity assumed in range *)
        let rec bsearch good bad =
          (* invariant: eliminates good, not (eliminates bad) *)
          if bad - good <= 1 then bad
          else begin
            let mid = (good + bad) / 2 in
            if eliminates mid then bsearch mid bad else bsearch good mid
          end
        in
        let first_bad = bsearch g head in
        (* version v applies the first v commits, so the commit introducing the
           miss at version v is history[v-1] *)
        let offending = List.nth compiler.C.Compiler.history (first_bad - 1) in
        Regression
          {
            offending;
            offending_index = first_bad;
            last_good = first_bad - 1;
            compilations = !probes;
          }
    end
  in
  (outcome, !probes)

let find_regression ?search ?cache compiler level prog ~marker =
  fst (find_regression_counted ?search ?cache compiler level prog ~marker)

type component_row = { component : string; commits : int; files : int }

let component_table commits =
  let seen = Hashtbl.create 64 in
  let unique =
    List.filter
      (fun (c : C.Version.commit) ->
        if Hashtbl.mem seen c.C.Version.id then false
        else begin
          Hashtbl.add seen c.C.Version.id ();
          true
        end)
      commits
  in
  Dce_support.Listx.group_by (fun (c : C.Version.commit) -> c.C.Version.component) unique
  |> List.map (fun (component, cs) ->
         let files =
           List.concat_map (fun (c : C.Version.commit) -> c.C.Version.files) cs
           |> List.sort_uniq compare
         in
         { component; commits = List.length cs; files = List.length files })
  |> List.sort (fun a b -> compare a.component b.component)
