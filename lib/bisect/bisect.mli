(** Regression bisection over a simulated compiler's commit history
    (paper §4.2, "Missed optimization diversity" and Tables 3/4).

    A {e regression} is a marker the compiler eliminates at some past version
    but misses at HEAD.  Bisection finds the {e offending commit}: the first
    commit after which the marker is missed.  As in the paper, the procedure
    is (a) find a good (eliminating) version, (b) search the range between it
    and HEAD.  Goodness is not globally monotone (ancient versions are simply
    too weak), so step (a) walks backwards exponentially from HEAD and step
    (b) assumes monotonicity only inside the found range — the same working
    assumption the paper's shell scripts make.

    Offending commits aggregate into the component/file tables the paper
    reports (Table 3 for LLVM, Table 4 for GCC). *)

type regression = {
  offending : Dce_compiler.Version.commit;
  offending_index : int;  (** the version at which the miss first appears *)
  last_good : int;
  compilations : int;     (** compile-and-check probes spent *)
}

type outcome =
  | Regression of regression
  | Always_missed  (** no version eliminates the marker: not a regression *)
  | Not_missed     (** HEAD eliminates the marker: nothing to bisect *)

val find_regression :
  ?search:[ `Linear | `Exponential ] ->
  ?cache:bool ->
  Dce_compiler.Compiler.t ->
  Dce_compiler.Level.t ->
  Dce_minic.Ast.program ->
  marker:int ->
  outcome
(** [find_regression compiler level instrumented ~marker]. [`Exponential]
    (default) probes HEAD-1, HEAD-2, HEAD-4, … then binary-searches;
    [`Linear] walks straight down (exact but more probes).

    [cache] (default [false]) routes every probe through
    {!Dce_compiler.Compiler.surviving_markers_cached}, the content-addressed
    compile cache keyed by [(compiler, version, level, program)].  One cached
    compile answers the probe for {e every} marker of the program, so
    bisecting sibling markers of one test case compiles each probed version
    once.  The outcome and the probe count are identical either way —
    memoized compilation is observably transparent. *)

val find_regression_counted :
  ?search:[ `Linear | `Exponential ] ->
  ?cache:bool ->
  Dce_compiler.Compiler.t ->
  Dce_compiler.Level.t ->
  Dce_minic.Ast.program ->
  marker:int ->
  outcome * int
(** Like {!find_regression}, additionally returning the compile-and-check
    probes spent for {e every} outcome (the [compilations] field only exists
    inside [Regression]); the campaign engine charges probes with this. *)

type component_row = { component : string; commits : int; files : int }

val component_table : Dce_compiler.Version.commit list -> component_row list
(** Deduplicates commits by id (hash-set based, linear in the input — the
    whole-corpus aggregation path feeds thousands of commits through here),
    groups by component, counts distinct files — the shape of the paper's
    Tables 3/4. Rows sorted by component name. *)
