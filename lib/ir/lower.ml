module Ast = Dce_minic.Ast
module Ops = Dce_minic.Ops
open Ir

type local_slot = Slot_reg of var | Slot_frame of string * Ast.typ

type ctx = {
  mutable done_blocks : (label * block) list;
  mutable cur_label : label;
  mutable cur_instrs : instr list; (* reversed *)
  mutable nvar : int;
  mutable nlabel : int;
  mutable names : string Imap.t;
  locals : (string, local_slot) Hashtbl.t;
  global_types : (string, Ast.typ) Hashtbl.t;
  mutable break_stack : label list;
  mutable cont_stack : label list;
  fname : string;
  mutable frame_syms : symbol list;
}

let fresh_var ?name ctx =
  let v = ctx.nvar in
  ctx.nvar <- v + 1;
  (match name with Some n -> ctx.names <- Imap.add v n ctx.names | None -> ());
  v

let fresh_label ctx =
  let l = ctx.nlabel in
  ctx.nlabel <- l + 1;
  l

let emit ctx i = ctx.cur_instrs <- i :: ctx.cur_instrs

let define ctx ?name rv =
  let v = fresh_var ?name ctx in
  emit ctx (Def (v, rv));
  Reg v

let finish_block ctx term =
  ctx.done_blocks <- (ctx.cur_label, { b_instrs = List.rev ctx.cur_instrs; b_term = term }) :: ctx.done_blocks;
  ctx.cur_instrs <- []

let start_block ctx l = ctx.cur_label <- l

(* ---------- name resolution ---------- *)

let frame_sym_name fname local = fname ^ "." ^ local

let resolve ctx name =
  match Hashtbl.find_opt ctx.locals name with
  | Some slot -> `Local slot
  | None -> (
    match Hashtbl.find_opt ctx.global_types name with
    | Some t -> `Global t
    | None -> failwith (Printf.sprintf "lower: unresolved name %s" name))

(* ---------- expressions ---------- *)

let rec lower_expr ctx (e : Ast.expr) : operand =
  match e with
  | Ast.Int n -> Const n
  | Ast.Var x -> (
    match resolve ctx x with
    | `Local (Slot_reg v) -> Reg v
    | `Local (Slot_frame (sym, Ast.Tarr _)) -> define ctx (Addr (sym, Const 0))
    | `Local (Slot_frame (sym, _)) ->
      let addr = define ctx (Addr (sym, Const 0)) in
      define ctx (Load addr)
    | `Global (Ast.Tarr _) -> define ctx (Addr (x, Const 0))
    | `Global _ ->
      let addr = define ctx (Addr (x, Const 0)) in
      define ctx (Load addr))
  | Ast.Unary (op, e1) ->
    let a = lower_expr ctx e1 in
    define ctx (Unary (op, a))
  | Ast.Binary (op, e1, e2) when Ops.is_logical op -> lower_short_circuit ctx op e1 e2
  | Ast.Binary (op, e1, e2) ->
    let a = lower_expr ctx e1 in
    let b = lower_expr ctx e2 in
    define ctx (Binary (op, a, b))
  | Ast.Addr_of lv -> lower_lvalue_addr ctx lv
  | Ast.Deref e1 ->
    let p = lower_expr ctx e1 in
    define ctx (Load p)
  | Ast.Index (base, idx) ->
    let addr = lower_index_addr ctx base idx in
    define ctx (Load addr)
  | Ast.Call (name, args) ->
    let arg_ops = List.map (lower_expr ctx) args in
    let v = fresh_var ctx in
    emit ctx (Call (Some v, name, arg_ops));
    Reg v

and lower_short_circuit ctx op e1 e2 =
  (* result register assigned on both paths; SSA construction inserts the phi *)
  let result = fresh_var ~name:"sc" ctx in
  let default_val = match op with Ops.Land -> 0 | Ops.Lor -> 1 | _ -> assert false in
  emit ctx (Def (result, Op (Const default_val)));
  let a = lower_expr ctx e1 in
  let l_rhs = fresh_label ctx in
  let l_end = fresh_label ctx in
  (match op with
   | Ops.Land -> finish_block ctx (Br (a, l_rhs, l_end))
   | Ops.Lor -> finish_block ctx (Br (a, l_end, l_rhs))
   | _ -> assert false);
  start_block ctx l_rhs;
  let b = lower_expr ctx e2 in
  let norm = define ctx (Binary (Ops.Ne, b, Const 0)) in
  emit ctx (Def (result, Op norm));
  finish_block ctx (Jmp l_end);
  start_block ctx l_end;
  Reg result

and lower_index_addr ctx base idx =
  let idx_op = lower_expr ctx idx in
  match resolve ctx base with
  | `Local (Slot_frame (sym, Ast.Tarr _)) -> define ctx (Addr (sym, idx_op))
  | `Global (Ast.Tarr _) -> define ctx (Addr (base, idx_op))
  | `Local (Slot_reg v) -> define ctx (Ptradd (Reg v, idx_op))
  | `Local (Slot_frame (sym, _)) ->
    let cell = define ctx (Addr (sym, Const 0)) in
    let p = define ctx (Load cell) in
    define ctx (Ptradd (p, idx_op))
  | `Global _ ->
    let cell = define ctx (Addr (base, Const 0)) in
    let p = define ctx (Load cell) in
    define ctx (Ptradd (p, idx_op))

and lower_lvalue_addr ctx (lv : Ast.lvalue) : operand =
  match lv with
  | Ast.Lvar x -> (
    match resolve ctx x with
    | `Local (Slot_frame (sym, _)) -> define ctx (Addr (sym, Const 0))
    | `Global _ -> define ctx (Addr (x, Const 0))
    | `Local (Slot_reg _) ->
      failwith (Printf.sprintf "lower: address of register local %s (classification bug)" x))
  | Ast.Lderef e -> lower_expr ctx e
  | Ast.Lindex (base, idx) -> lower_index_addr ctx base idx

(* ---------- statements ---------- *)

let lower_assign ctx (lv : Ast.lvalue) value =
  match lv with
  | Ast.Lvar x -> (
    match resolve ctx x with
    | `Local (Slot_reg v) -> emit ctx (Def (v, Op value))
    | `Local (Slot_frame (sym, _)) ->
      let addr = define ctx (Addr (sym, Const 0)) in
      emit ctx (Store (addr, value))
    | `Global _ ->
      let addr = define ctx (Addr (x, Const 0)) in
      emit ctx (Store (addr, value)))
  | Ast.Lderef e ->
    let addr = lower_expr ctx e in
    emit ctx (Store (addr, value))
  | Ast.Lindex (base, idx) ->
    let addr = lower_index_addr ctx base idx in
    emit ctx (Store (addr, value))

let rec lower_stmt ctx (s : Ast.stmt) =
  match s with
  | Ast.Sexpr (Ast.Call (name, args)) ->
    (* call for effect: no result register *)
    let arg_ops = List.map (lower_expr ctx) args in
    emit ctx (Call (None, name, arg_ops))
  | Ast.Sexpr e -> ignore (lower_expr ctx e)
  | Ast.Sdecl (name, _, init) -> (
    match init with
    | None -> ()
    | Some e ->
      let v = lower_expr ctx e in
      lower_assign ctx (Ast.Lvar name) v)
  | Ast.Sassign (lv, e) ->
    let v = lower_expr ctx e in
    lower_assign ctx lv v
  | Ast.Sif (cond, bt, bf) ->
    let c = lower_expr ctx cond in
    let l_then = fresh_label ctx in
    let l_end = fresh_label ctx in
    let l_else = if bf = [] then l_end else fresh_label ctx in
    finish_block ctx (Br (c, l_then, l_else));
    start_block ctx l_then;
    lower_block ctx bt;
    finish_block ctx (Jmp l_end);
    if bf <> [] then begin
      start_block ctx l_else;
      lower_block ctx bf;
      finish_block ctx (Jmp l_end)
    end;
    start_block ctx l_end
  | Ast.Swhile (cond, body) ->
    let l_header = fresh_label ctx in
    let l_body = fresh_label ctx in
    let l_exit = fresh_label ctx in
    finish_block ctx (Jmp l_header);
    start_block ctx l_header;
    let c = lower_expr ctx cond in
    finish_block ctx (Br (c, l_body, l_exit));
    start_block ctx l_body;
    ctx.break_stack <- l_exit :: ctx.break_stack;
    ctx.cont_stack <- l_header :: ctx.cont_stack;
    lower_block ctx body;
    ctx.break_stack <- List.tl ctx.break_stack;
    ctx.cont_stack <- List.tl ctx.cont_stack;
    finish_block ctx (Jmp l_header);
    start_block ctx l_exit
  | Ast.Sfor (init, cond, step, body) ->
    Option.iter (lower_stmt ctx) init;
    let l_header = fresh_label ctx in
    let l_body = fresh_label ctx in
    let l_step = fresh_label ctx in
    let l_exit = fresh_label ctx in
    finish_block ctx (Jmp l_header);
    start_block ctx l_header;
    (match cond with
     | None -> finish_block ctx (Jmp l_body)
     | Some c ->
       let op = lower_expr ctx c in
       finish_block ctx (Br (op, l_body, l_exit)));
    start_block ctx l_body;
    ctx.break_stack <- l_exit :: ctx.break_stack;
    ctx.cont_stack <- l_step :: ctx.cont_stack;
    lower_block ctx body;
    ctx.break_stack <- List.tl ctx.break_stack;
    ctx.cont_stack <- List.tl ctx.cont_stack;
    finish_block ctx (Jmp l_step);
    start_block ctx l_step;
    Option.iter (lower_stmt ctx) step;
    finish_block ctx (Jmp l_header);
    start_block ctx l_exit
  | Ast.Sswitch (scrut, cases, dflt) ->
    let c = lower_expr ctx scrut in
    let l_exit = fresh_label ctx in
    let case_labels = List.map (fun (k, _) -> (k, fresh_label ctx)) cases in
    let l_default = if dflt = [] then l_exit else fresh_label ctx in
    finish_block ctx (Switch (c, case_labels, l_default));
    ctx.break_stack <- l_exit :: ctx.break_stack;
    List.iter2
      (fun (_, body) (_, l) ->
        start_block ctx l;
        lower_block ctx body;
        finish_block ctx (Jmp l_exit))
      cases case_labels;
    if dflt <> [] then begin
      start_block ctx l_default;
      lower_block ctx dflt;
      finish_block ctx (Jmp l_exit)
    end;
    ctx.break_stack <- List.tl ctx.break_stack;
    start_block ctx l_exit
  | Ast.Sreturn e ->
    let op = Option.map (lower_expr ctx) e in
    finish_block ctx (Ret op);
    (* continue lowering any trailing statements into an unreachable block *)
    start_block ctx (fresh_label ctx)
  | Ast.Sbreak -> (
    match ctx.break_stack with
    | target :: _ ->
      finish_block ctx (Jmp target);
      start_block ctx (fresh_label ctx)
    | [] -> failwith "lower: break outside loop/switch")
  | Ast.Scontinue -> (
    match ctx.cont_stack with
    | target :: _ ->
      finish_block ctx (Jmp target);
      start_block ctx (fresh_label ctx)
    | [] -> failwith "lower: continue outside loop")
  | Ast.Sblock b -> lower_block ctx b
  | Ast.Smarker n -> emit ctx (Marker n)

and lower_block ctx b = List.iter (lower_stmt ctx) b

(* ---------- functions ---------- *)

let address_taken_locals (fn : Ast.func) =
  let taken = Hashtbl.create 8 in
  Ast.iter_program_exprs
    (function
      | Ast.Addr_of (Ast.Lvar x) | Ast.Addr_of (Ast.Lindex (x, _)) -> Hashtbl.replace taken x ()
      | _ -> ())
    { Ast.p_globals = []; p_funcs = [ fn ]; p_externs = [] };
  taken

let lower_func global_types (fn : Ast.func) : func * symbol list =
  let taken = address_taken_locals fn in
  let ctx =
    {
      done_blocks = [];
      cur_label = 0;
      cur_instrs = [];
      nvar = 0;
      nlabel = 1;
      names = Imap.empty;
      locals = Hashtbl.create 16;
      global_types;
      break_stack = [];
      cont_stack = [];
      fname = fn.Ast.f_name;
      frame_syms = [];
    }
  in
  let add_frame_sym name typ =
    let sym = frame_sym_name ctx.fname name in
    let size = Ast.typ_size typ in
    ctx.frame_syms <-
      {
        sym_name = sym;
        sym_size = size;
        sym_init = Array.make size (Cint 0);
        sym_static = true;
        sym_kind = `Frame ctx.fname;
      }
      :: ctx.frame_syms;
    Hashtbl.replace ctx.locals name (Slot_frame (sym, typ))
  in
  (* parameters: registers; spilled to a frame slot when address-taken *)
  let params =
    List.map
      (fun (p : Ast.param) ->
        let v = fresh_var ~name:p.p_name ctx in
        if Hashtbl.mem taken p.p_name then begin
          add_frame_sym p.p_name p.p_typ;
          let addr = define ctx (Addr (frame_sym_name ctx.fname p.p_name, Const 0)) in
          emit ctx (Store (addr, Reg v))
        end
        else Hashtbl.replace ctx.locals p.p_name (Slot_reg v);
        v)
      fn.Ast.f_params
  in
  (* locals: arrays and address-taken ones get frame slots; others registers,
     zero-defined at entry so every use has a reaching definition *)
  Ast.iter_block
    (function
      | Ast.Sdecl (name, typ, _) -> (
        if not (Hashtbl.mem ctx.locals name) then
          match typ with
          | Ast.Tarr _ -> add_frame_sym name typ
          | Ast.Tint | Ast.Tptr ->
            if Hashtbl.mem taken name then add_frame_sym name typ
            else begin
              let v = fresh_var ~name ctx in
              emit ctx (Def (v, Op (Const 0)));
              Hashtbl.replace ctx.locals name (Slot_reg v)
            end)
      | _ -> ())
    fn.Ast.f_body;
  lower_block ctx fn.Ast.f_body;
  (* implicit return: value functions fall back to 0 (total semantics) *)
  (match fn.Ast.f_ret with
   | None -> finish_block ctx (Ret None)
   | Some _ -> finish_block ctx (Ret (Some (Const 0))));
  let blocks =
    List.fold_left (fun m (l, b) -> Imap.add l b m) Imap.empty ctx.done_blocks
  in
  ( {
      fn_name = fn.Ast.f_name;
      fn_params = params;
      fn_entry = 0;
      fn_blocks = blocks;
      fn_next_var = ctx.nvar;
      fn_next_label = ctx.nlabel;
      fn_var_names = ctx.names;
      fn_static = fn.Ast.f_static;
      fn_returns_value = fn.Ast.f_ret <> None;
    },
    ctx.frame_syms )

let init_cells (g : Ast.global) =
  let size = Ast.typ_size g.Ast.g_typ in
  let cells = Array.make size (Cint 0) in
  (match g.Ast.g_init with
   | Ast.Gzero -> ()
   | Ast.Gint n -> cells.(0) <- Cint n
   | Ast.Gints vals -> List.iteri (fun i v -> if i < size then cells.(i) <- Cint v) vals
   | Ast.Gaddr (sym, off) -> cells.(0) <- Caddr (sym, off));
  cells

type env = { env_types : (string, Ast.typ) Hashtbl.t; env_sig : (string * Ast.typ) list }

let env (prog : Ast.program) : env =
  let global_types = Hashtbl.create 32 in
  List.iter (fun (g : Ast.global) -> Hashtbl.replace global_types g.Ast.g_name g.Ast.g_typ) prog.Ast.p_globals;
  {
    env_types = global_types;
    env_sig = List.map (fun (g : Ast.global) -> (g.Ast.g_name, g.Ast.g_typ)) prog.Ast.p_globals;
  }

let env_signature e = e.env_sig

let func e (fn : Ast.func) = lower_func e.env_types fn

let global_symbols (prog : Ast.program) =
  List.map
    (fun (g : Ast.global) ->
      {
        sym_name = g.Ast.g_name;
        sym_size = Ast.typ_size g.Ast.g_typ;
        sym_init = init_cells g;
        sym_static = g.Ast.g_static;
        sym_kind = `Global;
      })
    prog.Ast.p_globals

let program_with ~lower_func:lf (prog : Ast.program) : program =
  let e = env prog in
  let funcs_and_frames = List.map (lf e) prog.Ast.p_funcs in
  let funcs = List.map fst funcs_and_frames in
  let frames = List.concat_map snd funcs_and_frames in
  {
    prog_syms = global_symbols prog @ frames;
    prog_funcs = funcs;
    prog_externs = prog.Ast.p_externs;
  }

let program prog = program_with ~lower_func:func prog

let func_entry_marker_blocks (fn : func) =
  let acc = ref [] in
  iter_instrs (fun l i -> match i with Marker n -> acc := (n, l) :: !acc | _ -> ()) fn;
  List.rev !acc
