type label = int
type var = int

module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

module Bset = Set.Make (struct
  type t = string * int

  let compare = compare
end)

type operand = Const of int | Reg of var

type rvalue =
  | Op of operand
  | Unary of Dce_minic.Ops.unop * operand
  | Binary of Dce_minic.Ops.binop * operand * operand
  | Addr of string * operand
  | Ptradd of operand * operand
  | Load of operand
  | Phi of (label * operand) list

type instr =
  | Def of var * rvalue
  | Store of operand * operand
  | Call of var option * string * operand list
  | Marker of int

type terminator =
  | Jmp of label
  | Br of operand * label * label
  | Switch of operand * (int * label) list * label
  | Ret of operand option

type block = { b_instrs : instr list; b_term : terminator }

type func = {
  fn_name : string;
  fn_params : var list;
  fn_entry : label;
  fn_blocks : block Imap.t;
  fn_next_var : int;
  fn_next_label : int;
  fn_var_names : string Imap.t;
  fn_static : bool;
  fn_returns_value : bool;
}

type init_cell = Cint of int | Caddr of string * int

type symbol = {
  sym_name : string;
  sym_size : int;
  sym_init : init_cell array;
  sym_static : bool;
  sym_kind : [ `Global | `Frame of string ];
}

type program = {
  prog_syms : symbol list;
  prog_funcs : func list;
  prog_externs : (string * int) list;
}

let block fn l = Imap.find l fn.fn_blocks

let find_symbol prog name = List.find_opt (fun s -> s.sym_name = name) prog.prog_syms
let find_func prog name = List.find_opt (fun f -> f.fn_name = name) prog.prog_funcs

let successors = function
  | Jmp l -> [ l ]
  | Br (_, lt, lf) -> if lt = lf then [ lt ] else [ lt; lf ]
  | Switch (_, cases, dflt) ->
    let targets = List.map snd cases @ [ dflt ] in
    List.sort_uniq compare targets
  | Ret _ -> []

let map_func f prog = { prog with prog_funcs = List.map f prog.prog_funcs }

let update_func prog fn =
  {
    prog with
    prog_funcs = List.map (fun f -> if f.fn_name = fn.fn_name then fn else f) prog.prog_funcs;
  }

let operands_of_rvalue = function
  | Op a | Unary (_, a) | Load a | Addr (_, a) -> [ a ]
  | Binary (_, a, b) | Ptradd (a, b) -> [ a; b ]
  | Phi args -> List.map snd args

let operands_of_instr = function
  | Def (_, rv) -> operands_of_rvalue rv
  | Store (a, v) -> [ a; v ]
  | Call (_, _, args) -> args
  | Marker _ -> []

let operands_of_terminator = function
  | Jmp _ -> []
  | Br (c, _, _) -> [ c ]
  | Switch (c, _, _) -> [ c ]
  | Ret None -> []
  | Ret (Some a) -> [ a ]

let regs_of ops = List.filter_map (function Reg v -> Some v | Const _ -> None) ops

let uses_of_instr i = regs_of (operands_of_instr i)
let uses_of_terminator t = regs_of (operands_of_terminator t)

let def_of_instr = function
  | Def (v, _) -> Some v
  | Call (res, _, _) -> res
  | Store _ | Marker _ -> None

let map_rvalue_operands f = function
  | Op a -> Op (f a)
  | Unary (op, a) -> Unary (op, f a)
  | Binary (op, a, b) -> Binary (op, f a, f b)
  | Addr (s, a) -> Addr (s, f a)
  | Ptradd (a, b) -> Ptradd (f a, f b)
  | Load a -> Load (f a)
  | Phi args -> Phi (List.map (fun (l, a) -> (l, f a)) args)

let map_instr_operands f = function
  | Def (v, rv) -> Def (v, map_rvalue_operands f rv)
  | Store (a, v) -> Store (f a, f v)
  | Call (res, name, args) -> Call (res, name, List.map f args)
  | Marker n -> Marker n

let map_terminator_operands f = function
  | Jmp l -> Jmp l
  | Br (c, lt, lf) -> Br (f c, lt, lf)
  | Switch (c, cases, dflt) -> Switch (f c, cases, dflt)
  | Ret None -> Ret None
  | Ret (Some a) -> Ret (Some (f a))

let map_terminator_labels f = function
  | Jmp l -> Jmp (f l)
  | Br (c, lt, lf) -> Br (c, f lt, f lf)
  | Switch (c, cases, dflt) -> Switch (c, List.map (fun (k, l) -> (k, f l)) cases, f dflt)
  | Ret r -> Ret r

let has_side_effect = function
  | Store _ | Call _ | Marker _ -> true
  | Def _ -> false

let instr_count fn =
  Imap.fold (fun _ b acc -> acc + List.length b.b_instrs + 1) fn.fn_blocks 0

let program_instr_count prog =
  List.fold_left (fun acc fn -> acc + instr_count fn) 0 prog.prog_funcs

let block_count fn = Imap.cardinal fn.fn_blocks

let program_block_count prog =
  List.fold_left (fun acc fn -> acc + block_count fn) 0 prog.prog_funcs

let iter_instrs f fn =
  Imap.iter (fun l b -> List.iter (fun i -> f l i) b.b_instrs) fn.fn_blocks

let fresh_var fn = ({ fn with fn_next_var = fn.fn_next_var + 1 }, fn.fn_next_var)
let fresh_label fn = ({ fn with fn_next_label = fn.fn_next_label + 1 }, fn.fn_next_label)

let called_names fn =
  let acc = ref [] in
  iter_instrs (fun _ i -> match i with Call (_, name, _) -> acc := name :: !acc | _ -> ()) fn;
  List.rev !acc

let marker_ids fn =
  let acc = ref [] in
  iter_instrs (fun _ i -> match i with Marker n -> acc := n :: !acc | _ -> ()) fn;
  List.rev !acc

let program_marker_ids prog = List.concat_map marker_ids prog.prog_funcs
