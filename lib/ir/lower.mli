(** Lowering from MiniC ASTs to the CFG IR.

    The output is the {e pre-SSA} form: registers may be defined multiple
    times and no phi nodes exist.  This is the form the reference interpreter
    executes and the form {!Ssa.construct} consumes.

    Lowering decisions (documented because several passes rely on them):
    - every register-allocated local is zero-defined in the entry block, so
      every use has a reaching definition (MiniC locals are zero-initialized);
    - locals whose address is taken, and all local arrays, become frame
      symbols ([`Frame fn]) accessed through [Addr]/[Load]/[Store];
    - short-circuit [&&]/[||] become control flow (fresh blocks);
    - array-typed names decay to [Addr (sym, 0)] when read as values;
    - falling off the end of a value-returning function returns 0 (total
      semantics), and [switch] cases implicitly break. *)

val program : Dce_minic.Ast.program -> Ir.program
(** Lowers a checked program. Raises [Failure] on constructs the type checker
    should have rejected (internal error). *)

(** {1 Per-function lowering}

    Lowering one function is a pure function of the function and the global
    typing environment — {e no} other function's body is consulted.  That
    independence is what lets {!Dce_compiler.Compiler} memoize lowered
    functions by content hash across the closely-related candidate programs
    of a reduction: [program p] is definitionally
    [program_with ~lower_func:func p]. *)

type env
(** Global typing environment: the name → type map lowering resolves
    variable references against. *)

val env : Dce_minic.Ast.program -> env

val env_signature : env -> (string * Dce_minic.Ast.typ) list
(** The (name, type) rows of the environment in declaration order — the part
    of the program a per-function lowering memo must include in its key. *)

val func : env -> Dce_minic.Ast.func -> Ir.func * Ir.symbol list
(** Lower one function; the symbols are its frame slots (address-taken
    locals and local arrays). *)

val global_symbols : Dce_minic.Ast.program -> Ir.symbol list
(** The global data symbols, initializers materialized. *)

val program_with :
  lower_func:(env -> Dce_minic.Ast.func -> Ir.func * Ir.symbol list) ->
  Dce_minic.Ast.program ->
  Ir.program
(** [program] with the per-function step replaced (the memoization hook):
    symbol layout and function order are preserved regardless of how
    [lower_func] produces each function. *)

val func_entry_marker_blocks : Ir.func -> (int * Ir.label) list
(** For each marker in the function, the label of the block containing it
    (used to map markers back to CFG blocks). *)
