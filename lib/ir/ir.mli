(** The compiler intermediate representation shared by both simulated
    compilers.

    Functions are control-flow graphs of basic blocks over virtual registers.
    Memory (globals, arrays, address-taken locals) lives in named symbols;
    pointers are first-class run-time values [(symbol, offset)].  The same IR
    is used in two forms:

    - directly after {!Lower}ing, registers may be assigned multiple times
      (no phis) — this form is what the reference interpreter executes;
    - after {!Ssa.construct}, every register has exactly one definition and
      blocks may start with [Phi] definitions — all optimization passes work
      on this form.

    Optimization markers appear as the opaque {!instr.Marker} instruction; no
    pass may remove one except by deleting its whole (unreachable) block,
    mirroring calls to undefined functions in the paper. *)

type label = int
(** Basic-block identifier, unique within a function. *)

type var = int
(** Virtual register, unique within a function. *)

module Imap : Map.S with type key = int
module Iset : Set.S with type elt = int

module Bset : Set.S with type elt = string * int
(** Sets of (function name, block label) pairs — the executed/live block
    sets produced by the executors.  Immutable so executor results are
    value-comparable in differential tests; [elements] yields the same
    order as sorting the pairs with polymorphic [compare]. *)

type operand =
  | Const of int  (** integer constant *)
  | Reg of var

type rvalue =
  | Op of operand                       (** copy *)
  | Unary of Dce_minic.Ops.unop * operand
  | Binary of Dce_minic.Ops.binop * operand * operand
  | Addr of string * operand            (** address of element [off] of symbol *)
  | Ptradd of operand * operand         (** pointer plus element offset *)
  | Load of operand                     (** read through pointer *)
  | Phi of (label * operand) list       (** SSA join; one entry per predecessor *)

type instr =
  | Def of var * rvalue                 (** register definition *)
  | Store of operand * operand          (** [Store (addr, value)] *)
  | Call of var option * string * operand list  (** direct call, optional result *)
  | Marker of int                       (** optimization marker (opaque) *)

type terminator =
  | Jmp of label
  | Br of operand * label * label       (** nonzero → first target *)
  | Switch of operand * (int * label) list * label  (** cases, default *)
  | Ret of operand option

type block = { b_instrs : instr list; b_term : terminator }

type func = {
  fn_name : string;
  fn_params : var list;
  fn_entry : label;
  fn_blocks : block Imap.t;
  fn_next_var : int;     (** first unused register id *)
  fn_next_label : int;   (** first unused label id *)
  fn_var_names : string Imap.t;  (** debug name hints for registers *)
  fn_static : bool;
  fn_returns_value : bool;
}

(** Initial contents of one memory cell. *)
type init_cell =
  | Cint of int
  | Caddr of string * int  (** address constant: symbol and element offset *)

type symbol = {
  sym_name : string;
  sym_size : int;                (** number of cells *)
  sym_init : init_cell array;    (** length = [sym_size] *)
  sym_static : bool;
  sym_kind : [ `Global | `Frame of string ];
      (** [`Frame fn]: a stack slot of function [fn], fresh per activation *)
}

type program = {
  prog_syms : symbol list;
  prog_funcs : func list;
  prog_externs : (string * int) list;
}

(** {1 Accessors and helpers} *)

val block : func -> label -> block
(** Raises [Not_found] if the label is absent. *)

val find_symbol : program -> string -> symbol option
val find_func : program -> string -> func option

val successors : terminator -> label list
(** Successor labels in order, without duplicates. *)

val map_func : (func -> func) -> program -> program
val update_func : program -> func -> program
(** Replaces the function with the same name. *)

val operands_of_rvalue : rvalue -> operand list
val operands_of_instr : instr -> operand list
val operands_of_terminator : terminator -> operand list

val uses_of_instr : instr -> var list
(** Registers read by the instruction (phi arguments included). *)

val uses_of_terminator : terminator -> var list

val def_of_instr : instr -> var option
(** The register defined, if any. *)

val map_instr_operands : (operand -> operand) -> instr -> instr
(** Rewrites every operand (phi arguments included, labels untouched). *)

val map_terminator_operands : (operand -> operand) -> terminator -> terminator

val map_terminator_labels : (label -> label) -> terminator -> terminator

val has_side_effect : instr -> bool
(** [Store], [Call], and [Marker] have observable effects; a pure [Def] does
    not (loads are pure in the sense of being deletable when unused). *)

val instr_count : func -> int
(** Number of instructions, a size measure for inlining heuristics. *)

val program_instr_count : program -> int

val block_count : func -> int
(** Number of basic blocks (unreachable ones included). *)

val program_block_count : program -> int

val iter_instrs : (label -> instr -> unit) -> func -> unit
(** Iterates in increasing label order; deterministic. *)

val fresh_var : func -> func * var
val fresh_label : func -> func * label

val called_names : func -> string list
(** Call targets appearing in the function (markers excluded). *)

val marker_ids : func -> int list
(** Marker ids appearing in the function body. *)

val program_marker_ids : program -> int list
