type line = Label of string | Ins of string * string list | Directive of string

type t = { lines : line list }

let to_string t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun line ->
      match line with
      | Label l -> Buffer.add_string buf (l ^ ":\n")
      | Ins (m, ops) ->
        Buffer.add_string buf ("\t" ^ m);
        if ops <> [] then Buffer.add_string buf ("\t" ^ String.concat ", " ops);
        Buffer.add_char buf '\n'
      | Directive d -> Buffer.add_string buf ("\t." ^ d ^ "\n"))
    t.lines;
  Buffer.contents buf

let instruction_count t =
  List.length (List.filter (function Ins _ -> true | Label _ | Directive _ -> false) t.lines)

let size = instruction_count

let surviving_calls t =
  List.filter_map
    (function
      | Ins ("callq", [ target ]) -> Some target
      | Ins _ | Label _ | Directive _ -> None)
    t.lines

let surviving_markers t =
  surviving_calls t
  |> List.filter_map Dce_minic.Ast.marker_of_name
  |> List.sort_uniq compare

let marker_survives t n = List.mem n (surviving_markers t)
