(** Pseudo-x86 assembly: the observation channel of the whole technique.

    The paper decides marker liveness by scanning the {e generated assembly}
    for [callq DCEMarkerN] — never by asking the compiler.  This module is
    that assembly: a flat list of labels and instructions produced by
    {!Codegen}, with {!surviving_calls}/{!marker_survives} as the only
    analysis anyone performs on it.  Keeping the check purely textual
    preserves the black-box property of the approach. *)

type line =
  | Label of string
  | Ins of string * string list  (** mnemonic, operands *)
  | Directive of string

type t = { lines : line list }

val to_string : t -> string

val instruction_count : t -> int
(** Number of [Ins] lines (a code-size proxy). *)

val size : t -> int
(** The code-size proxy the size oracle compares: currently
    {!instruction_count}.  Labels and directives are free — they assemble to
    no bytes — so counting executable instructions is the textual analogue of
    an object-file [.text] size, and stays purely a function of the emitted
    assembly (the black-box property again). *)

val surviving_calls : t -> string list
(** Call targets appearing in the text, in order, with duplicates. *)

val surviving_markers : t -> int list
(** Marker ids with at least one surviving call, deduplicated, sorted. *)

val marker_survives : t -> int -> bool
