type typ = Tint | Tptr | Tarr of int

type lvalue = Lvar of string | Lderef of expr | Lindex of string * expr

and expr =
  | Int of int
  | Var of string
  | Unary of Ops.unop * expr
  | Binary of Ops.binop * expr * expr
  | Addr_of of lvalue
  | Deref of expr
  | Index of string * expr
  | Call of string * expr list

type stmt =
  | Sexpr of expr
  | Sdecl of string * typ * expr option
  | Sassign of lvalue * expr
  | Sif of expr * block * block
  | Swhile of expr * block
  | Sfor of stmt option * expr option * stmt option * block
  | Sswitch of expr * (int * block) list * block
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of block
  | Smarker of int

and block = stmt list

type ginit = Gzero | Gint of int | Gints of int list | Gaddr of string * int

type global = { g_name : string; g_typ : typ; g_init : ginit; g_static : bool }
type param = { p_name : string; p_typ : typ }

type func = {
  f_name : string;
  f_params : param list;
  f_ret : typ option;
  f_body : block;
  f_static : bool;
}

type program = {
  p_globals : global list;
  p_funcs : func list;
  p_externs : (string * int) list;
}

let marker_prefix = "DCEMarker"

let marker_name n = marker_prefix ^ string_of_int n

let marker_of_name name =
  let plen = String.length marker_prefix in
  if String.length name > plen && String.sub name 0 plen = marker_prefix then
    int_of_string_opt (String.sub name plen (String.length name - plen))
  else None

let typ_size = function
  | Tint | Tptr -> 1
  | Tarr n -> n

let equal_typ a b =
  match (a, b) with
  | Tint, Tint | Tptr, Tptr -> true
  | Tarr n, Tarr m -> n = m
  | (Tint | Tptr | Tarr _), _ -> false

let rec iter_expr f e =
  f e;
  match e with
  | Int _ | Var _ -> ()
  | Unary (_, e1) | Deref e1 | Index (_, e1) -> iter_expr f e1
  | Binary (_, e1, e2) -> iter_expr f e1; iter_expr f e2
  | Addr_of lv -> iter_lvalue_exprs f lv
  | Call (_, args) -> List.iter (iter_expr f) args

and iter_lvalue_exprs f = function
  | Lvar _ -> ()
  | Lderef e | Lindex (_, e) -> iter_expr f e

let rec iter_stmt f s =
  f s;
  match s with
  | Sexpr _ | Sdecl _ | Sassign _ | Sreturn _ | Sbreak | Scontinue | Smarker _ -> ()
  | Sif (_, bt, bf) -> iter_block f bt; iter_block f bf
  | Swhile (_, b) -> iter_block f b
  | Sfor (init, _, step, b) ->
    Option.iter (iter_stmt f) init;
    Option.iter (iter_stmt f) step;
    iter_block f b
  | Sswitch (_, cases, dflt) ->
    List.iter (fun (_, b) -> iter_block f b) cases;
    iter_block f dflt
  | Sblock b -> iter_block f b

and iter_block f b = List.iter (iter_stmt f) b

let iter_program_stmts f prog = List.iter (fun fn -> iter_block f fn.f_body) prog.p_funcs

let stmt_exprs s =
  match s with
  | Sexpr e -> [ e ]
  | Sdecl (_, _, init) -> Option.to_list init
  | Sassign (lv, e) ->
    let lv_exprs = match lv with Lvar _ -> [] | Lderef e' | Lindex (_, e') -> [ e' ] in
    lv_exprs @ [ e ]
  | Sif (c, _, _) | Swhile (c, _) | Sswitch (c, _, _) -> [ c ]
  | Sfor (_, cond, _, _) -> Option.to_list cond
  | Sreturn e -> Option.to_list e
  | Sbreak | Scontinue | Sblock _ | Smarker _ -> []

let iter_program_exprs f prog =
  iter_program_stmts (fun s -> List.iter (iter_expr f) (stmt_exprs s)) prog

let rec map_block f b = List.concat_map (map_stmt f) b

and map_stmt f s =
  let s =
    match s with
    | Sexpr _ | Sdecl _ | Sassign _ | Sreturn _ | Sbreak | Scontinue | Smarker _ -> s
    | Sif (c, bt, bf) -> Sif (c, map_block f bt, map_block f bf)
    | Swhile (c, b) -> Swhile (c, map_block f b)
    | Sfor (init, cond, step, b) -> Sfor (init, cond, step, map_block f b)
    | Sswitch (c, cases, dflt) ->
      Sswitch (c, List.map (fun (k, b) -> (k, map_block f b)) cases, map_block f dflt)
    | Sblock b -> Sblock (map_block f b)
  in
  f s

let map_program_blocks f prog =
  { prog with p_funcs = List.map (fun fn -> { fn with f_body = f fn.f_body }) prog.p_funcs }

let markers_of_program prog =
  let acc = ref [] in
  iter_program_stmts (function Smarker n -> acc := n :: !acc | _ -> ()) prog;
  List.rev !acc

let max_marker prog = List.fold_left max (-1) (markers_of_program prog)

let stmt_count prog =
  let n = ref 0 in
  iter_program_stmts (fun _ -> incr n) prog;
  !n

let rec expr_size e =
  match e with
  | Int _ | Var _ -> 1
  | Unary (_, e1) | Deref e1 | Index (_, e1) -> 1 + expr_size e1
  | Binary (_, e1, e2) -> 1 + expr_size e1 + expr_size e2
  | Addr_of lv -> 1 + (match lv with Lvar _ -> 0 | Lderef e' | Lindex (_, e') -> expr_size e')
  | Call (_, args) -> List.fold_left (fun acc a -> acc + expr_size a) 1 args

(* ------------------------------------------------------------------ *)
(* structural hashing (content addressing for the reduction caches)    *)
(* ------------------------------------------------------------------ *)

(* A 62-bit FNV-1a-style fold over the full AST.  [Hashtbl.hash] cannot be
   used here: its default meaningful-node limit (10) would collapse every
   non-trivial program onto a handful of hash values.  Every constructor
   mixes a distinct tag, so values of different shapes hash apart; strings
   are mixed character by character.  Collisions remain possible (the caches
   built on these hashes double-check keys structurally) but are not
   engineered to be common. *)

let hash_seed = 0x1000_0001_b3

let mix h v = ((h lxor (v land max_int)) * 0x100_0000_01b3) land max_int

let mix_string h s =
  let h = ref (mix h (String.length s)) in
  String.iter (fun c -> h := mix !h (Char.code c)) s;
  !h

let mix_bool h b = mix h (if b then 1 else 0)

let mix_typ h = function
  | Tint -> mix h 1
  | Tptr -> mix h 2
  | Tarr n -> mix (mix h 3) n

let rec mix_lvalue h = function
  | Lvar x -> mix_string (mix h 10) x
  | Lderef e -> mix_expr (mix h 11) e
  | Lindex (x, e) -> mix_expr (mix_string (mix h 12) x) e

and mix_expr h = function
  | Int n -> mix (mix h 20) n
  | Var x -> mix_string (mix h 21) x
  | Unary (op, e) -> mix_expr (mix (mix h 22) (Hashtbl.hash op)) e
  | Binary (op, e1, e2) -> mix_expr (mix_expr (mix (mix h 23) (Hashtbl.hash op)) e1) e2
  | Addr_of lv -> mix_lvalue (mix h 24) lv
  | Deref e -> mix_expr (mix h 25) e
  | Index (x, e) -> mix_expr (mix_string (mix h 26) x) e
  | Call (f, args) ->
    List.fold_left mix_expr (mix (mix_string (mix h 27) f) (List.length args)) args

let rec mix_stmt h = function
  | Sexpr e -> mix_expr (mix h 40) e
  | Sdecl (x, t, init) ->
    let h = mix_typ (mix_string (mix h 41) x) t in
    (match init with None -> mix h 0 | Some e -> mix_expr (mix h 1) e)
  | Sassign (lv, e) -> mix_expr (mix_lvalue (mix h 42) lv) e
  | Sif (c, bt, bf) -> mix_block (mix_block (mix_expr (mix h 43) c) bt) bf
  | Swhile (c, b) -> mix_block (mix_expr (mix h 44) c) b
  | Sfor (init, cond, step, b) ->
    let mix_opt_stmt h = function None -> mix h 0 | Some s -> mix_stmt (mix h 1) s in
    let h = mix_opt_stmt (mix h 45) init in
    let h = match cond with None -> mix h 0 | Some e -> mix_expr (mix h 1) e in
    mix_block (mix_opt_stmt h step) b
  | Sswitch (c, cases, dflt) ->
    let h = mix (mix_expr (mix h 46) c) (List.length cases) in
    mix_block (List.fold_left (fun h (k, b) -> mix_block (mix h k) b) h cases) dflt
  | Sreturn None -> mix h 47
  | Sreturn (Some e) -> mix_expr (mix h 48) e
  | Sbreak -> mix h 49
  | Scontinue -> mix h 50
  | Sblock b -> mix_block (mix h 51) b
  | Smarker n -> mix (mix h 52) n

and mix_block h b = List.fold_left mix_stmt (mix h (List.length b)) b

let hash_block b = mix_block hash_seed b

let mix_ginit h = function
  | Gzero -> mix h 60
  | Gint n -> mix (mix h 61) n
  | Gints ns -> List.fold_left mix (mix (mix h 62) (List.length ns)) ns
  | Gaddr (s, k) -> mix (mix_string (mix h 63) s) k

let mix_global h g =
  mix_bool (mix_ginit (mix_typ (mix_string (mix h 70) g.g_name) g.g_typ) g.g_init) g.g_static

let mix_func h fn =
  let h = mix_string (mix h 80) fn.f_name in
  let h =
    List.fold_left
      (fun h p -> mix_typ (mix_string h p.p_name) p.p_typ)
      (mix h (List.length fn.f_params))
      fn.f_params
  in
  let h = match fn.f_ret with None -> mix h 0 | Some t -> mix_typ (mix h 1) t in
  mix_block (mix_bool h fn.f_static) fn.f_body

let hash_func fn = mix_func hash_seed fn

let hash_program prog =
  let h = mix hash_seed (List.length prog.p_globals) in
  let h = List.fold_left mix_global h prog.p_globals in
  let h = List.fold_left (fun h fn -> mix h (hash_func fn)) (mix h (List.length prog.p_funcs)) prog.p_funcs in
  List.fold_left (fun h (name, arity) -> mix (mix_string h name) arity) (mix h 90) prog.p_externs

let called_names prog =
  let acc = ref [] in
  iter_program_exprs (function Call (name, _) -> acc := name :: !acc | _ -> ()) prog;
  let markers = ref [] in
  iter_program_stmts (function Smarker n -> markers := marker_name n :: !markers | _ -> ()) prog;
  List.rev !acc @ List.rev !markers

let find_func prog name = List.find_opt (fun f -> f.f_name = name) prog.p_funcs

let pp_typ fmt = function
  | Tint -> Format.pp_print_string fmt "int"
  | Tptr -> Format.pp_print_string fmt "int *"
  | Tarr n -> Format.fprintf fmt "int[%d]" n
