(** Abstract syntax of MiniC.

    MiniC is the C subset this project's compilers consume: deterministic,
    input-free programs over 63-bit integers, int arrays, and pointers to int.
    It is expressive enough to transcribe every test case in the paper
    (globals with initializers, [static] linkage, pointer/array aliasing,
    loops, calls) while keeping the semantics total — there is no undefined
    behaviour anywhere in the language (see {!Ops}).

    Optimization markers — the paper's central device — exist at the AST level
    as the {!constructor:stmt.Marker} statement.  A marker pretty-prints and
    parses as a call [DCEMarker<n>();] to an undefined external function, so a
    compiler can eliminate it only by proving its enclosing block dead. *)

type typ =
  | Tint          (** 63-bit integer *)
  | Tptr          (** pointer to int *)
  | Tarr of int   (** int array with a fixed positive size *)

type lvalue =
  | Lvar of string                (** variable *)
  | Lderef of expr                (** [*e] *)
  | Lindex of string * expr       (** [a\[e\]] where [a] is an array or pointer variable *)

and expr =
  | Int of int                          (** integer literal *)
  | Var of string                       (** variable read *)
  | Unary of Ops.unop * expr
  | Binary of Ops.binop * expr * expr
  | Addr_of of lvalue                   (** [&lv] *)
  | Deref of expr                       (** [*e] *)
  | Index of string * expr              (** [a\[e\]] read *)
  | Call of string * expr list          (** direct call *)

type stmt =
  | Sexpr of expr                       (** expression statement (calls) *)
  | Sdecl of string * typ * expr option (** local declaration, optional init *)
  | Sassign of lvalue * expr
  | Sif of expr * block * block         (** else-branch may be [[]] *)
  | Swhile of expr * block
  | Sfor of stmt option * expr option * stmt option * block
      (** [for (init; cond; step) body]; [init]/[step] are assignments or
          expression statements *)
  | Sswitch of expr * (int * block) list * block
      (** non-fall-through switch: each case body implicitly breaks; the last
          component is the default body (possibly [[]]) *)
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of block                     (** explicit braces *)
  | Smarker of int                      (** optimization marker [DCEMarker<n>();] *)

and block = stmt list

type ginit =
  | Gzero                    (** default zero initialization *)
  | Gint of int              (** scalar constant *)
  | Gints of int list        (** array initializer, zero-filled to size *)
  | Gaddr of string * int    (** [&sym] or [&sym\[k\]] — address constant *)

type global = {
  g_name : string;
  g_typ : typ;
  g_init : ginit;
  g_static : bool;
}

type param = { p_name : string; p_typ : typ }

type func = {
  f_name : string;
  f_params : param list;
  f_ret : typ option;  (** [None] for [void] *)
  f_body : block;
  f_static : bool;
}

type program = {
  p_globals : global list;
  p_funcs : func list;
  p_externs : (string * int) list;
      (** declared-but-undefined functions (name, arity); marker functions are
          implicitly extern and need not be listed *)
}

val marker_name : int -> string
(** [marker_name 3] is ["DCEMarker3"], the call-target name a marker compiles
    to. *)

val marker_of_name : string -> int option
(** Inverse of {!marker_name}; [None] if the name is not a marker name. *)

val typ_size : typ -> int
(** Number of int cells occupied by a value of this type (arrays: their
    length; scalars: 1). *)

val equal_typ : typ -> typ -> bool

(** {1 Traversals} *)

val iter_expr : (expr -> unit) -> expr -> unit
(** Applies the function to the expression and every sub-expression. *)

val iter_stmt : (stmt -> unit) -> stmt -> unit
(** Applies the function to the statement and, recursively, every statement
    nested inside it. *)

val iter_block : (stmt -> unit) -> block -> unit

val iter_program_stmts : (stmt -> unit) -> program -> unit
(** Every statement of every function. *)

val iter_program_exprs : (expr -> unit) -> program -> unit
(** Every expression of every statement of every function (including
    conditions, initializers, and l-value sub-expressions). *)

val map_block : (stmt -> stmt list) -> block -> block
(** [map_block f b] rewrites a block bottom-up: nested blocks are rewritten
    first, then [f] maps each statement to its replacement list (so [f] can
    delete, keep, or expand statements). *)

val map_program_blocks : (block -> block) -> program -> program
(** Applies a block transformation to every function body. *)

(** {1 Queries} *)

val markers_of_program : program -> int list
(** All marker ids appearing in the program, in syntactic order. *)

val max_marker : program -> int
(** Largest marker id, or [-1] when there are none. *)

val stmt_count : program -> int
(** Total number of statements (recursively), a size measure used by the
    reducer and the generator. *)

val expr_size : expr -> int
(** Number of AST nodes in the expression. *)

(** {1 Structural hashing}

    Content addressing for the reduction engine's caches.  The hashes fold
    the {e entire} value (unlike [Hashtbl.hash], whose node limit collapses
    all non-trivial programs), so structurally equal values always hash
    equal and unequal values rarely collide; consumers that cannot tolerate
    collisions must double-check keys structurally, which is what the
    compile/verdict caches do. *)

val hash_block : block -> int
val hash_func : func -> int
(** Covers the signature ([name], params, return type, [static]) and the
    body — the "function-body hash" keying the per-function compile memo. *)

val hash_program : program -> int
(** Combines globals, per-function hashes, and externs.  Invariant under
    pretty-print → reparse (QCheck-tested). *)

val called_names : program -> string list
(** Names of all call targets, in syntactic order, with duplicates. *)

val find_func : program -> string -> func option

val pp_typ : Format.formatter -> typ -> unit
