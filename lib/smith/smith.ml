open Dce_minic.Ast
module Rng = Dce_support.Rng
module Ops = Dce_minic.Ops

type kind =
  | K_literal
  | K_const_local
  | K_global_nostore
  | K_global_samestore
  | K_global_diffstore
  | K_addr_cmp
  | K_uniform_array
  | K_inline_chain
  | K_loop_sum
  | K_range
  | K_shift_range
  | K_alias_table
  | K_loop_guard
  | K_switch
  | K_func_dead
  | K_ptr_loop
  | K_ipa_arg
  | K_peep_eq
  | K_alive

let kind_name = function
  | K_literal -> "literal"
  | K_const_local -> "const-local"
  | K_global_nostore -> "global-nostore"
  | K_global_samestore -> "global-samestore"
  | K_global_diffstore -> "global-diffstore"
  | K_addr_cmp -> "addr-cmp"
  | K_uniform_array -> "uniform-array"
  | K_inline_chain -> "inline-chain"
  | K_loop_sum -> "loop-sum"
  | K_range -> "range"
  | K_shift_range -> "shift-range"
  | K_alias_table -> "alias-table"
  | K_loop_guard -> "loop-guard"
  | K_switch -> "switch"
  | K_func_dead -> "func-dead"
  | K_ptr_loop -> "ptr-loop"
  | K_ipa_arg -> "ipa-arg"
  | K_peep_eq -> "peep-eq"
  | K_alive -> "alive"

let all_kinds =
  [
    K_literal; K_const_local; K_global_nostore; K_global_samestore; K_global_diffstore;
    K_addr_cmp; K_uniform_array; K_inline_chain; K_loop_sum; K_range; K_shift_range;
    K_alias_table; K_loop_guard; K_switch; K_func_dead; K_ptr_loop; K_ipa_arg; K_peep_eq;
    K_alive;
  ]

type config = {
  seed : int;
  num_sites : int;
  num_helpers : int;
  weights : (kind * int) list;
  max_nest : int;
}

(* Weights tuned so the corpus reproduces the paper's Table 1/2 shape:
   front-end-foldable and O1-foldable kinds dominate (Csmith dead code is
   mostly simple), the analysis-specific kinds provide the inter-compiler and
   inter-level differentials, and alive sites contribute ~10 % live markers
   plus the irreducible "missed by everyone" background. *)
let default_weights =
  [
    (K_literal, 18);
    (K_const_local, 26);
    (K_global_nostore, 22);
    (K_switch, 12);
    (K_inline_chain, 8);
    (K_loop_sum, 5);
    (K_range, 3);
    (K_loop_guard, 2);
    (K_alive, 6);
    (K_global_samestore, 2);
    (K_global_diffstore, 2);
    (K_addr_cmp, 2);
    (K_uniform_array, 1);
    (K_shift_range, 1);
    (K_alias_table, 1);
    (K_func_dead, 1);
    (K_ptr_loop, 1);
    (K_ipa_arg, 2);
    (K_peep_eq, 2);
  ]

let default_config seed =
  { seed; num_sites = 15; num_helpers = 1; weights = default_weights; max_nest = 4 }

(* ---------- generator state ---------- *)

type st = {
  rng : Rng.t;
  mutable globals : global list; (* reversed *)
  mutable helpers : func list;   (* reversed *)
  mutable tail : stmt list;      (* appended at the end of main, reversed *)
  mutable gid : int;
  mutable fid : int;
  mutable lid : int;
  mutable counts : (kind * int) list;
  (* int-typed globals safe to read anywhere (alive values) *)
  mutable readable : string list;
}

let bump st kind =
  let cur = Option.value ~default:0 (List.assoc_opt kind st.counts) in
  st.counts <- (kind, cur + 1) :: List.remove_assoc kind st.counts

let fresh_global st = let n = st.gid in st.gid <- n + 1; Printf.sprintf "g_%d" n
let fresh_func st = let n = st.fid in st.fid <- n + 1; Printf.sprintf "fn_%d" n
let fresh_local st = let n = st.lid in st.lid <- n + 1; Printf.sprintf "t_%d" n

let add_global st ?(static = true) ?(typ = Tint) ?(init = Gzero) () =
  let name = fresh_global st in
  st.globals <- { g_name = name; g_typ = typ; g_init = init; g_static = static } :: st.globals;
  name

(* an opaque runtime value: an extern call, masked to stay small *)
let opaque st ?(mask = 63) () =
  let salt = Rng.int st.rng 1000 in
  Binary (Ops.Band, Call ("ext", [ Int salt ]), Int mask)

(* a small pure expression over the given readable variables *)
let rec small_expr st depth vars =
  if depth <= 0 || vars = [] || Rng.chance st.rng 0.4 then
    if vars <> [] && Rng.chance st.rng 0.6 then Var (Rng.choose st.rng vars)
    else Int (Rng.int_in st.rng (-20) 40)
  else
    let op =
      Rng.choose st.rng [ Ops.Add; Ops.Sub; Ops.Mul; Ops.Band; Ops.Bor; Ops.Bxor ]
    in
    Binary (op, small_expr st (depth - 1) vars, small_expr st (depth - 1) vars)

(* a few harmless statements (assignments to fresh globals, sink calls) *)
let filler_stmts st vars =
  let n = Rng.int_in st.rng 1 3 in
  List.init n (fun _ ->
      if Rng.chance st.rng 0.5 then begin
        let g = add_global st ~static:true () in
        Sassign (Lvar g, small_expr st 2 vars)
      end
      else Sexpr (Call ("use", [ small_expr st 2 vars ])))

(* body of a dead (or alive) region: filler + possibly nested structure.
   Nested conditions are mostly cheaply foldable (constants through one local)
   so that, like Csmith output, the bulk of nested dead blocks disappears as
   soon as the enclosing region is reachable to the optimizer — only the
   enclosing condition carries the analysis challenge. *)
let rec region_body st nest vars =
  let base = filler_stmts st vars in
  let nested_if nest' =
    if Rng.chance st.rng 0.7 then begin
      (* foldable-false guard: a constant local compared out of range *)
      let t = fresh_local st in
      let v = Rng.int_in st.rng 0 9 in
      [
        Sdecl (t, Tint, Some (Int v));
        Sif (Binary (Ops.Gt, Var t, Int (v + Rng.int_in st.rng 5 40)),
             region_body st nest' vars, []);
      ]
    end
    else [ Sif (small_expr st 2 vars, region_body st nest' vars, []) ]
  in
  let twice = nest > 1 && Rng.chance st.rng 0.4 in
  let extra2 = if twice then nested_if (nest - 2) else [] in
  let extra =
    if nest > 0 then begin
      (* nested structure; inside a dead region everything becomes secondary *)
      match Rng.int st.rng 3 with
      | 0 -> nested_if (nest - 1)
      | 1 ->
        (* small loop over a fresh local *)
        let i = fresh_local st in
        [
          Sdecl (i, Tint, Some (Int 0));
          Swhile
            ( Binary (Ops.Lt, Var i, Int (Rng.int_in st.rng 1 4)),
              region_body st (nest - 1) vars @ [ Sassign (Lvar i, Binary (Ops.Add, Var i, Int 1)) ]
            );
        ]
      | _ ->
        (* a conditional early return that never fires at run time (the
           condition is statically nonzero-or-one, dynamically never zero) *)
        [
          Sif
            ( Binary (Ops.Eq, Binary (Ops.Bor, opaque st (), Int 1), Int 0),
              [ Sreturn (Some (Int 0)) ],
              [] );
        ]
    end
    else []
  in
  base @ extra @ extra2

(* ---------- dead-site builders; each returns statements for main ---------- *)

let site_literal st nest vars =
  let body = region_body st nest vars in
  if Rng.chance st.rng 0.3 then [ Swhile (Int 0, body) ] else [ Sif (Int 0, body, []) ]

let site_const_local st nest vars =
  let t = fresh_local st in
  let v = Rng.int_in st.rng 1 9 in
  [
    Sdecl (t, Tint, Some (Int v));
    Sif (Binary (Ops.Gt, Binary (Ops.Mul, Var t, Int 2), Int 100), region_body st nest vars, []);
  ]

let site_global_nostore st nest vars =
  let init = Rng.int_in st.rng 0 5 in
  let g = add_global st ~init:(Gint init) () in
  [ Sif (Binary (Ops.Ne, Var g, Int init), region_body st nest vars, []) ]

let site_global_samestore st nest vars =
  let g = add_global st ~init:(Gint 0) () in
  st.tail <- Sassign (Lvar g, Int 0) :: st.tail;
  [ Sif (Var g, region_body st nest vars, []) ]

let site_global_diffstore st nest vars =
  let g = add_global st ~init:(Gint 0) () in
  st.tail <- Sassign (Lvar g, Int 1) :: st.tail;
  [ Sif (Var g, region_body st nest vars, []) ]

let site_addr_cmp st nest vars =
  let a = add_global st ~static:false () in
  let b = add_global st ~static:false ~typ:(Tarr 2) () in
  let p = fresh_local st in
  let q = fresh_local st in
  let k = if Rng.chance st.rng 0.7 then 1 else 0 in
  [
    Sdecl (p, Tptr, Some (Addr_of (Lvar a)));
    Sdecl (q, Tptr, Some (Addr_of (Lindex (b, Int k))));
    Sif (Binary (Ops.Eq, Var p, Var q), region_body st nest vars, []);
  ]

let site_uniform_array st nest vars =
  let v = Rng.int_in st.rng 0 3 in
  let size = Rng.choose st.rng [ 2; 4 ] in
  let arr = add_global st ~typ:(Tarr size) ~init:(Gints (List.init size (fun _ -> v))) () in
  let idx = Binary (Ops.Band, opaque st (), Int (size - 1)) in
  [ Sif (Binary (Ops.Ne, Index (arr, idx), Int v), region_body st nest vars, []) ]

let site_inline_chain st nest vars =
  let deep = Rng.chance st.rng 0.08 in
  let depth = Rng.int_in st.rng 1 3 in
  let const = Rng.int_in st.rng 1 50 in
  (* chain fn_k() { return fn_{k-1}() + 1; }; base returns const *)
  let pad body =
    (* deep chains get padded bodies so only large inline thresholds take them *)
    if deep then
      let stmts =
        List.init 30 (fun i ->
            let t = fresh_local st in
            Sdecl (t, Tint, Some (Binary (Ops.Add, Int i, Int const))))
      in
      stmts @ body
    else body
  in
  let base_name = fresh_func st in
  st.helpers <-
    {
      f_name = base_name;
      f_params = [];
      f_ret = Some Tint;
      f_body = pad [ Sreturn (Some (Int const)) ];
      f_static = true;
    }
    :: st.helpers;
  let rec chain name k =
    if k = 0 then name
    else begin
      let next = fresh_func st in
      st.helpers <-
        {
          f_name = next;
          f_params = [];
          f_ret = Some Tint;
          f_body = pad [ Sreturn (Some (Binary (Ops.Add, Call (name, []), Int 1))) ];
          f_static = true;
        }
        :: st.helpers;
      chain next (k - 1)
    end
  in
  let top = chain base_name depth in
  [ Sif (Binary (Ops.Ne, Call (top, []), Int (const + depth)), region_body st nest vars, []) ]

let site_loop_sum st nest vars =
  (* trips beyond 16 need the -O3 unroll budget: an O3-only win *)
  let n = if Rng.chance st.rng 0.08 then Rng.int_in st.rng 17 30 else Rng.int_in st.rng 3 14 in
  let s = fresh_local st in
  let i = fresh_local st in
  let expected = n * (n - 1) / 2 in
  [
    Sdecl (s, Tint, Some (Int 0));
    Sdecl (i, Tint, None);
    Sfor
      ( Some (Sassign (Lvar i, Int 0)),
        Some (Binary (Ops.Lt, Var i, Int n)),
        Some (Sassign (Lvar i, Binary (Ops.Add, Var i, Int 1))),
        [ Sassign (Lvar s, Binary (Ops.Add, Var s, Var i)) ] );
    Sif (Binary (Ops.Ne, Var s, Int expected), region_body st nest vars, []);
  ]

let site_range st nest vars =
  let t = fresh_local st in
  let mask = Rng.choose st.rng [ 7; 15; 31 ] in
  if Rng.chance st.rng 0.25 then begin
    (* mod-singleton variant: needs Eq-refinement plus the mod range rule *)
    let m = Rng.int_in st.rng 5 9 in
    let k = Rng.int_in st.rng 0 (min 4 (m - 1)) in
    [
      Sdecl (t, Tint, Some (opaque st ~mask ()));
      Sif
        ( Binary (Ops.Eq, Var t, Int k),
          [ Sif (Binary (Ops.Ne, Binary (Ops.Mod, Var t, Int m), Int k), region_body st nest vars, []) ],
          [] );
    ]
  end
  else
    [
      Sdecl (t, Tint, Some (opaque st ~mask ()));
      Sif (Binary (Ops.Gt, Var t, Int (mask + Rng.int_in st.rng 1 20)), region_body st nest vars, []);
    ]

let site_shift_range st nest vars =
  (* t = opaque&m | 1 (nonzero); if (t << k) { if (t == 0) DEAD } *)
  let t = fresh_local st in
  let k = Rng.int_in st.rng 1 4 in
  [
    Sdecl (t, Tint, Some (Binary (Ops.Bor, opaque st ~mask:7 (), Int 1)));
    Sif
      ( Binary (Ops.Shl, Var t, Int k),
        [ Sif (Binary (Ops.Eq, Var t, Int 0), region_body st nest vars, []) ],
        [] );
  ]

let site_alias_table st nest vars =
  (* a store through a pointer loaded from a table sits between a constant
     store to a non-escaping static and its re-read: proving the check dead
     requires knowing the unknown pointer cannot target the static *)
  let x = add_global st ~init:(Gint 0) () in
  let y = add_global st ~static:false () in
  let z = add_global st ~static:false () in
  let tab = add_global st ~static:true ~typ:(Tarr 2) () in
  let p = fresh_local st in
  let v = Rng.int_in st.rng 2 9 in
  let idx = Binary (Ops.Band, opaque st (), Int 1) in
  [
    Sassign (Lvar x, Int v);
    Sassign (Lindex (tab, Int 0), Addr_of (Lvar y));
    Sassign (Lindex (tab, Int 1), Addr_of (Lvar z));
    Sdecl (p, Tptr, Some (Index (tab, idx)));
    Sassign (Lderef (Var p), Int (Rng.int_in st.rng 1 9));
    Sif (Binary (Ops.Ne, Var x, Int v), region_body st nest vars, []);
  ]

let site_loop_guard st nest vars =
  let g = add_global st ~static:false ~init:(Gint 0) () in
  [
    Sassign (Lvar g, Int 0);
    Swhile (Var g, region_body st nest vars);
  ]

let site_switch st nest vars =
  let t = fresh_local st in
  let taken = Rng.int_in st.rng 0 2 in
  let a = Rng.int_in st.rng 1 9 in
  let cases =
    List.init 3 (fun k ->
        (k, region_body st (if k = taken then 0 else nest) vars))
  in
  [
    (* constant scrutinee behind one arithmetic step: folds at -O1, not -O0 *)
    Sdecl (t, Tint, Some (Binary (Ops.Sub, Int (taken + a), Int a)));
    Sswitch (Var t, cases, region_body st nest vars);
  ]

let site_func_dead st nest vars =
  (* a static function reachable only from a foldable-false branch *)
  let dead_fn = fresh_func st in
  st.helpers <-
    {
      f_name = dead_fn;
      f_params = [];
      f_ret = Some Tint;
      f_body =
        (* the paper's Listing 9b shape: the dead function never returns, so
           the inliner leaves it alone and only unreachable-node removal can
           eliminate its markers *)
        (let g = add_global st () in
         (Sassign (Lvar g, Int 7) :: region_body st nest [ g ])
         @ [ Swhile (Int 1, [ Sassign (Lvar g, Binary (Ops.Add, Var g, Int 1)) ]);
             Sreturn (Some (Int 0)) ]);
      f_static = true;
    }
    :: st.helpers;
  let t = fresh_local st in
  ignore vars;
  [
    Sdecl (t, Tint, Some (Int (Rng.int_in st.rng 1 5)));
    Sif (Binary (Ops.Eq, Var t, Int 0), [ Sexpr (Call (dead_fn, [])) ], []);
  ]

let site_ptr_loop st nest vars =
  let size = Rng.choose st.rng [ 2; 4 ] in
  let a = add_global st ~typ:(Tarr 2) () in
  let b = add_global st ~init:(Gint 0) () in
  let c = add_global st ~typ:(Tarr size) () in
  [
    Sfor
      ( Some (Sassign (Lvar b, Int 0)),
        Some (Binary (Ops.Lt, Var b, Int size)),
        Some (Sassign (Lvar b, Binary (Ops.Add, Var b, Int 1))),
        [ Sassign (Lindex (c, Var b), Addr_of (Lindex (a, Int 1))) ] );
    Sif (Unary (Ops.Lnot, Index (c, Int 0)), region_body st nest vars, []);
  ]

let site_ipa_arg st nest vars =
  (* a static helper too large for any inline threshold, whose dead branch is
     gated by its parameter; every call site passes the same constant, so only
     interprocedural constant propagation proves the branch dead *)
  let helper = fresh_func st in
  let const = Rng.int_in st.rng 2 40 in
  let pad =
    (* ~90 statements of busywork keep the body above the -O3 inline limit *)
    List.concat
      (List.init 30 (fun i ->
           let t = fresh_local st in
           let g = add_global st () in
           [
             Sdecl (t, Tint, Some (Binary (Ops.Add, Var "x", Int i)));
             Sassign (Lvar g, Binary (Ops.Mul, Var t, Int (i + 1)));
             Sexpr (Call ("use", [ Binary (Ops.Bxor, Var t, Var g) ]));
           ]))
  in
  st.helpers <-
    {
      f_name = helper;
      f_params = [ { p_name = "x"; p_typ = Tint } ];
      f_ret = Some Tint;
      f_body =
        pad
        @ [
            Sif (Binary (Ops.Ne, Var "x", Int const), region_body st nest vars, []);
            Sreturn (Some (Binary (Ops.Add, Var "x", Int 1)));
          ];
      f_static = true;
    }
    :: st.helpers;
  [ Sexpr (Call ("use", [ Call (helper, [ Int const ]) ])) ]

let site_peep_eq st nest vars =
  (* (t + c1) == (t + c2) with c1 <> c2: always false, opaque to range
     analysis (t unbounded), decidable only by the offset-compare
     instcombine pattern (peephole level 3) *)
  let t = fresh_local st in
  let c1 = Rng.int_in st.rng 1 30 in
  let c2 = c1 + Rng.int_in st.rng 1 20 in
  [
    Sdecl (t, Tint, Some (Call ("ext", [ Int (Rng.int st.rng 1000) ])));
    Sif
      ( Binary (Ops.Eq, Binary (Ops.Add, Var t, Int c1), Binary (Ops.Add, Var t, Int c2)),
        region_body st nest vars,
        [] );
  ]

let site_alive st nest vars =
  match Rng.int st.rng 3 with
  | 0 ->
    (* always-true masked comparison *)
    let t = fresh_local st in
    [
      Sdecl (t, Tint, Some (opaque st ~mask:15 ()));
      Sif (Binary (Ops.Le, Var t, Int 100), region_body st nest vars, []);
    ]
  | 1 ->
    (* executed loop *)
    let i = fresh_local st in
    let trips = Rng.int_in st.rng 1 5 in
    let g = add_global st () in
    [
      Sdecl (i, Tint, Some (Int 0));
      Swhile
        ( Binary (Ops.Lt, Var i, Int trips),
          (Sassign (Lvar g, Binary (Ops.Add, Var g, Var i))
           :: region_body st (max 0 (nest - 1)) (g :: vars))
          @ [ Sassign (Lvar i, Binary (Ops.Add, Var i, Int 1)) ] );
      Sexpr (Call ("use", [ Var g ]));
    ]
  | _ ->
    (* if/else where the else side is the one executed *)
    let t = fresh_local st in
    [
      Sdecl (t, Tint, Some (Binary (Ops.Bor, opaque st ~mask:7 (), Int 8)));
      Sif
        ( Binary (Ops.Lt, Var t, Int 8),
          region_body st nest vars,
          region_body st (max 0 (nest - 1)) vars );
    ]

let build_site st kind nest vars =
  bump st kind;
  let nest = match kind with K_alive -> 0 | _ -> nest in
  match kind with
  | K_literal -> site_literal st nest vars
  | K_const_local -> site_const_local st nest vars
  | K_global_nostore -> site_global_nostore st nest vars
  | K_global_samestore -> site_global_samestore st nest vars
  | K_global_diffstore -> site_global_diffstore st nest vars
  | K_addr_cmp -> site_addr_cmp st nest vars
  | K_uniform_array -> site_uniform_array st nest vars
  | K_inline_chain -> site_inline_chain st nest vars
  | K_loop_sum -> site_loop_sum st nest vars
  | K_range -> site_range st nest vars
  | K_shift_range -> site_shift_range st nest vars
  | K_alias_table -> site_alias_table st nest vars
  | K_loop_guard -> site_loop_guard st nest vars
  | K_switch -> site_switch st nest vars
  | K_func_dead -> site_func_dead st nest vars
  | K_ptr_loop -> site_ptr_loop st nest vars
  | K_ipa_arg -> site_ipa_arg st nest vars
  | K_peep_eq -> site_peep_eq st nest vars
  | K_alive -> site_alive st nest vars

(* generic helper functions: small pure computations over their argument *)
let generic_helper st =
  let name = fresh_func st in
  let body =
    [
      Sif
        ( Binary (Ops.Gt, Var "x", Int (Rng.int_in st.rng 10 60)),
          [ Sreturn (Some (Binary (Ops.Sub, Var "x", Int 1))) ],
          [] );
      Sreturn (Some (small_expr st 2 [ "x" ]));
    ]
  in
  st.helpers <-
    { f_name = name; f_params = [ { p_name = "x"; p_typ = Tint } ]; f_ret = Some Tint; f_body = body; f_static = true }
    :: st.helpers;
  name

let generate config =
  let st =
    {
      rng = Rng.make config.seed;
      globals = [];
      helpers = [];
      tail = [];
      gid = 0;
      fid = 0;
      lid = 0;
      counts = [];
      readable = [];
    }
  in
  (* a couple of always-available readable globals *)
  let base_globals =
    List.init 2 (fun _ -> add_global st ~init:(Gint (Rng.int_in st.rng 0 9)) ())
  in
  st.readable <- base_globals;
  let helper_names = List.init config.num_helpers (fun _ -> generic_helper st) in
  let main_sites =
    List.concat_map
      (fun _ ->
        let kind = Rng.weighted st.rng (List.map (fun (k, w) -> (w, k)) config.weights) in
        build_site st kind config.max_nest st.readable)
      (List.init config.num_sites (fun i -> i))
  in
  (* sprinkle a few helper calls so generic helpers are reachable *)
  let helper_calls =
    List.map
      (fun h -> Sexpr (Call ("use", [ Call (h, [ small_expr st 1 st.readable ]) ])))
      helper_names
  in
  let main_body = helper_calls @ main_sites @ List.rev st.tail @ [ Sreturn (Some (Int 0)) ] in
  let main =
    { f_name = "main"; f_params = []; f_ret = Some Tint; f_body = main_body; f_static = false }
  in
  let prog =
    {
      p_globals = List.rev st.globals;
      p_funcs = List.rev (main :: st.helpers);
      p_externs = [ ("use", 1); ("ext", 1) ];
    }
  in
  match Dce_minic.Typecheck.check prog with
  | Ok p -> (p, st.counts)
  | Error errs ->
    failwith
      (Printf.sprintf "Smith generated an ill-formed program (seed %d):\n%s\n%s" config.seed
         (String.concat "\n" errs)
         (Dce_minic.Pretty.program_to_string prog))

(* the per-program seed sequence behind [generate_corpus], exposed so a
   sharded campaign can regenerate any single corpus program from its index
   without drawing the whole corpus *)
let corpus_seeds ~seed ~count =
  let rng = Rng.make seed in
  List.init count (fun _ -> Int64.to_int (Int64.shift_right_logical (Rng.bits64 rng) 2))

let generate_corpus ~seed ~count =
  List.map (fun s -> generate (default_config s)) (corpus_seeds ~seed ~count)
