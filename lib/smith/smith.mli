(** Smith: the Csmith-analog random MiniC program generator.

    Generated programs have the three properties the paper's methodology
    needs (§4.1): they are {e deterministic}, take {e no input}, and contain
    {e large dead parts} (~90 % of instrumented blocks).  Termination is by
    construction (loops have constant bounds or strictly decreasing local
    counters) and the programs are trap-free on the executed paths
    (array indices are masked to power-of-two sizes, pointers are initialized
    before use), so ground truth by execution almost never rejects.

    Every dead site is planted with a {e challenge kind} describing which
    analysis a compiler needs to prove it dead — constant locals for plain
    SCCP, never-written statics for global value analysis, pointer
    comparisons, aliasing through pointer tables, call chains that need
    inlining, counted loops that need unrolling, ranges, uniform arrays,
    non-static loop guards, switches, and nested (secondary) dead code.  The
    kind weights control the corpus composition and therefore where each
    optimization level's elimination rate lands (paper Tables 1/2). *)

type kind =
  | K_literal             (** [if (0)] / code after return — front-end strength *)
  | K_const_local         (** needs local constant propagation *)
  | K_global_nostore      (** static global never written (GVA, any tier) *)
  | K_global_samestore    (** static global re-written with its initializer *)
  | K_global_diffstore    (** poisoned by a later different store — both compilers miss *)
  | K_addr_cmp            (** [&a == &b\[k\]] pointer-comparison folding *)
  | K_uniform_array       (** load from all-equal constant array, unknown index *)
  | K_inline_chain        (** constant through a chain of static calls *)
  | K_loop_sum            (** needs full unrolling of a counted loop *)
  | K_range               (** needs value-range propagation *)
  | K_shift_range         (** needs the VRP shift rule (Listing 9a family) *)
  | K_alias_table         (** store through a pointer-table load (alias precision) *)
  | K_loop_guard          (** dead loop guarded by a stored-zero non-static global *)
  | K_switch              (** non-taken cases of a constant switch *)
  | K_func_dead           (** whole static function reachable only from dead code *)
  | K_ptr_loop            (** pointer-array fill loop (Listing 9e family) *)
  | K_ipa_arg             (** needs interprocedural argument propagation:
                              a too-big-to-inline callee gated on a constant
                              argument *)
  | K_peep_eq             (** needs the offset-compare instcombine pattern
                              (peephole level 3): [(t+c1) == (t+c2)] *)
  | K_alive               (** an executed block (alive markers) *)

val kind_name : kind -> string
val all_kinds : kind list

type config = {
  seed : int;
  num_sites : int;            (** dead/alive sites in [main] *)
  num_helpers : int;          (** static helper functions *)
  weights : (kind * int) list;(** site-kind sampling weights *)
  max_nest : int;             (** nesting depth of secondary dead code *)
}

val default_config : int -> config
(** [default_config seed] — weights tuned so the corpus reproduces the
    paper's Table 1/2 shape. *)

val generate : config -> Dce_minic.Ast.program * (kind * int) list
(** Returns the (type-checked) program and the count of planted sites per
    kind.  Same config ⇒ identical program. *)

val corpus_seeds : seed:int -> count:int -> int list
(** The per-program seeds [generate_corpus] derives from the master [seed]:
    program [i] of the corpus is exactly
    [generate (default_config (List.nth (corpus_seeds ~seed ~count) i))].
    Lets a sharded campaign regenerate any corpus program from its index. *)

val generate_corpus : seed:int -> count:int -> (Dce_minic.Ast.program * (kind * int) list) list
(** [count] programs from derived seeds. *)
