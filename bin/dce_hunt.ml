(* dce_hunt — command-line front end to the missed-optimization detector.

   Subcommands mirror the paper's workflow (Figure 1):
     generate   produce random MiniC test programs (Csmith role)
     analyze    instrument one program, compute ground truth, compare configs
     compile    run one simulated compiler and show IR/assembly
     hunt       end-to-end campaign over a generated corpus
     size-hunt  code-size oracle campaign (-Os larger than the rival's, or than own -O2)
     level-hunt level-inversion oracle campaign (dead at a weak level, alive at a strong one)
     reduce     shrink a test case while preserving an oracle finding
     bisect     find the commit that introduced a regression
     bisect-campaign
                bisect every missed marker of a corpus into Tables 3/4
     repair     search feature-edit fixes for a missed marker and A/B-verify them
     campaign-diff
                compare two persisted campaign runs table by table
     explain    show a configuration's feature matrix, pass schedule, history

   Argument errors (unknown compiler/level/oracle/executor, missing --marker)
   are reported as a one-line usage error naming the offending flag, exit 2 —
   never as an escaped exception with a backtrace. *)

open Cmdliner
module C = Dce_compiler
module Core = Dce_core
module Ir = Dce_ir.Ir

let read_program path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  match Dce_minic.Typecheck.check (Dce_minic.Parser.parse_program src) with
  | Ok prog -> prog
  | Error errs -> failwith (String.concat "\n" errs)

let compiler_of_string ?(flag = "--compiler") s =
  match s with
  | "gcc" | "gcc-sim" -> C.Gcc_sim.compiler
  | "llvm" | "llvm-sim" -> C.Llvm_sim.compiler
  | other -> failwith (Printf.sprintf "%s: unknown compiler %S (use gcc or llvm)" flag other)

let level_of_string ?(flag = "--level") s =
  match C.Level.of_string s with
  | Some l -> l
  | None -> failwith (Printf.sprintf "%s: unknown level %S (use O0, O1, Os, O2, O3)" flag s)

let iset_to_string s = String.concat "," (List.map string_of_int (Ir.Iset.elements s))

(* ---------- executor backend (shared by every executing subcommand) ---------- *)

let exec_arg =
  Arg.(
    value & opt string "vm"
    & info [ "exec" ] ~docv:"vm|interp"
        ~doc:
          "Ground-truth executor backend: $(b,vm) compiles lowered IR to register bytecode and \
           runs the flat VM (default); $(b,interp) is the tree-walking reference interpreter. \
           Both produce identical results — markers, blocks, events, step counts — so every \
           report is byte-identical across backends; interp exists as the oracle to cross-check \
           the VM.")

let set_exec s =
  match Dce_exec.Exec.of_string s with
  | Some b -> Dce_exec.Exec.set_default b
  | None ->
    failwith
      (Printf.sprintf "--exec: unknown executor %S (use %s)" s
         (String.concat " or " Dce_exec.Exec.all_names))

(* ---------- generate ---------- *)

let generate_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.") in
  let count = Arg.(value & opt int 10 & info [ "count" ] ~docv:"N" ~doc:"Programs to generate.") in
  let out = Arg.(value & opt string "corpus" & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.") in
  let run seed count out =
    Dce_support.Fsx.mkdir_p out;
    List.iteri
      (fun i (prog, kinds) ->
        let path = Filename.concat out (Printf.sprintf "p%04d.c" i) in
        let oc = open_out path in
        output_string oc (Dce_minic.Pretty.program_to_string prog);
        close_out oc;
        Printf.printf "%s: %s\n" path
          (String.concat " "
             (List.map
                (fun (k, n) -> Printf.sprintf "%s=%d" (Dce_smith.Smith.kind_name k) n)
                kinds)))
      (Dce_smith.Smith.generate_corpus ~seed ~count)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate random MiniC test programs (the Csmith role).")
    Term.(const run $ seed $ count $ out)

(* ---------- analyze ---------- *)

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c")

let analyze_cmd =
  let diagnose =
    Arg.(value & flag & info [ "diagnose" ] ~doc:"Root-cause each primary -O3 miss.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Show per-configuration pass attribution (which stage eliminated which marker).")
  in
  let run path diagnose trace exec =
    set_exec exec;
    let prog = read_program path in
    match Core.Analysis.run prog with
    | Core.Analysis.Rejected reason -> Printf.printf "rejected: %s\n" reason
    | Core.Analysis.Analyzed a ->
      let truth = a.Core.Analysis.truth in
      Printf.printf "markers: %d (%d alive, %d dead)\n"
        (Ir.Iset.cardinal truth.Core.Ground_truth.all)
        (Ir.Iset.cardinal truth.Core.Ground_truth.alive)
        (Ir.Iset.cardinal truth.Core.Ground_truth.dead);
      Printf.printf "alive: {%s}\n" (iset_to_string truth.Core.Ground_truth.alive);
      List.iter
        (fun pc ->
          Printf.printf "%-9s %-4s keeps {%s}  missed {%s}  primary {%s}\n"
            pc.Core.Analysis.cfg_compiler
            (C.Level.to_string pc.Core.Analysis.cfg_level)
            (iset_to_string pc.Core.Analysis.surviving)
            (iset_to_string pc.Core.Analysis.missed)
            (iset_to_string pc.Core.Analysis.primary_missed);
          if trace then
            List.iter
              (fun (stage, markers) ->
                Printf.printf "    %s eliminated {%s}\n" stage
                  (String.concat "," (List.map string_of_int markers)))
              (C.Passmgr.attribution pc.Core.Analysis.cfg_trace))
        a.Core.Analysis.configs;
      if diagnose then
        List.iter
          (fun pc ->
            if pc.Core.Analysis.cfg_level = C.Level.O3 then
              Ir.Iset.iter
                (fun m ->
                  let d =
                    Core.Diagnose.run
                      (compiler_of_string pc.Core.Analysis.cfg_compiler)
                      C.Level.O3 a.Core.Analysis.instrumented ~marker:m
                  in
                  Printf.printf "diagnosis: %s -O3 marker %d -> %s%s\n"
                    pc.Core.Analysis.cfg_compiler m (Core.Diagnose.signature d)
                    (match d.Core.Diagnose.guilty_stage with
                     | Some s -> Printf.sprintf " (guilty stage: %s)" s
                     | None -> ""))
                pc.Core.Analysis.primary_missed)
          a.Core.Analysis.configs
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Instrument a program, execute it for ground truth, and compare both simulated \
          compilers at every level.")
    Term.(const run $ file_arg $ diagnose $ trace $ exec_arg)

(* ---------- compile ---------- *)

let compile_cmd =
  let comp = Arg.(value & opt string "gcc" & info [ "compiler" ] ~docv:"gcc|llvm") in
  let level = Arg.(value & opt string "O2" & info [ "level" ] ~docv:"O0..O3") in
  let version =
    Arg.(value & opt (some int) None & info [ "at-version" ] ~docv:"N" ~doc:"Historic version.")
  in
  let dump_ir = Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print optimized IR instead of assembly.") in
  let instrument = Arg.(value & flag & info [ "instrument" ] ~doc:"Insert DCE markers first.") in
  let run path comp level version dump_ir instrument =
    let prog = read_program path in
    let prog = if instrument then Core.Instrument.program prog else prog in
    let compiler = compiler_of_string comp in
    let level = level_of_string level in
    let ir = C.Compiler.compile_ir compiler ?version level prog in
    if dump_ir then print_string (Dce_ir.Printer.program_to_string ir)
    else print_string (Dce_backend.Asm.to_string (Dce_backend.Codegen.program ir))
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile one program and print assembly (or IR).")
    Term.(const run $ file_arg $ comp $ level $ version $ dump_ir $ instrument)

(* ---------- campaign flags shared by hunt / triage / value-hunt ---------- *)

module Campaign = Dce_campaign

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains.  Sharding is deterministic: findings and reports are identical for \
           every $(docv), and $(docv)=1 runs the historical sequential path.")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Worker processes.  The campaign fabric forks $(docv) persistent workers (each running \
           $(b,--jobs) domains) and hands out case chunks on demand, so a slow chunk never stalls \
           the rest of the corpus.  Output is byte-identical for every $(docv); a crashed worker \
           only quarantines the cases it was holding.")

let chunk_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chunk" ] ~docv:"N"
        ~doc:
          "Cases per work-stealing chunk handed to a worker process (default: sized from the \
           pending-case count).  Smaller chunks balance better; larger chunks amortize protocol \
           round-trips.  Only meaningful with $(b,--workers) > 1.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "JSONL checkpoint journal.  Each completed case is appended as it finishes; re-running \
           with the same $(docv) resumes, skipping every case already recorded (a journal \
           truncated mid-line resumes from the last complete record).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print campaign metrics: throughput, analysis-cache hit rate, supervision counters, \
           and per-stage wall-time percentiles aggregated across workers.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Per-case wall-clock deadline.  Budgets are cooperative (poll points at stage \
           boundaries, between passes, and in the interpreter step loop): a case that blows the \
           deadline is quarantined as a timeout naming the guilty stage instead of stalling its \
           worker.")

let step_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "step-budget" ] ~docv:"N"
        ~doc:
          "Per-case poll-point budget — the deterministic sibling of $(b,--deadline): the same \
           case trips at the same poll on every run, independent of machine speed.")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Re-run a case whose fault is classified transient up to $(docv) extra attempts, each \
           under a fresh deadline/budget, before quarantining it.")

let chaos_plan_of_spec = function
  | None -> []
  | Some spec -> (
    match Campaign.Chaos.of_string spec with
    | Ok plan -> plan
    | Error msg -> failwith ("--chaos: " ^ msg))

let print_epilogue ?(metrics = false) ~quarantine ~quarantine_text ~resumed summary =
  if quarantine <> [] then begin
    Printf.printf "%d case(s) quarantined (campaign completed without them):\n"
      (List.length quarantine);
    print_string quarantine_text
  end;
  if resumed > 0 then Printf.printf "(%d case(s) restored from the journal, not re-run)\n" resumed;
  if summary.Campaign.Metrics.journal_skipped > 0 then
    Printf.printf "(%d journal record(s) skipped — unreadable or from another build — and re-run)\n"
      summary.Campaign.Metrics.journal_skipped;
  if metrics then print_string (Campaign.Metrics.to_string summary)

(* ---------- per-run artifact directories ---------- *)

let run_root_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "run-root" ] ~docv:"DIR"
        ~doc:
          "Persist the run as $(docv)/run-$(i,ID)/ — meta.json, report.json, metrics.json, \
           report.txt, and the checkpoint journal (unless $(b,--journal) points elsewhere).  The \
           run id is a pure function of the campaign parameters, so re-running lands in (and \
           resumes from) the same directory, and two such directories feed \
           $(b,dce_hunt campaign-diff).")

(* ---------- hunt ---------- *)

let hunt_cmd =
  let seed = Arg.(value & opt int 20220228 & info [ "seed" ] ~docv:"N") in
  let count = Arg.(value & opt int 50 & info [ "count" ] ~docv:"N") in
  let inject =
    Arg.(
      value
      & opt (list int) []
      & info [ "inject-crash" ] ~docv:"I,J,.."
          ~doc:
            "Fault-injection: crash the generate stage of the listed corpus indices to exercise \
             quarantine (testing hook).")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"PLAN"
          ~doc:
            "Deterministic fault plan: comma-separated KIND@CASE[:STAGE] entries, KIND one of \
             crash, hang, slow, corrupt, transient[N].  Example: \
             \"crash@1,transient@3:differential,hang@5:ground-truth\".  Hangs require \
             $(b,--deadline) or $(b,--step-budget); corrupt implies $(b,--checked).")
  in
  let bundle_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "bundle-dir" ] ~docv:"DIR"
          ~doc:
            "Write a self-contained crash bundle (meta.json + repro.c) under $(docv)/case-NNNN/ \
             for every quarantined case.")
  in
  let minimize_bundles =
    Arg.(
      value & flag
      & info [ "minimize-bundles" ]
          ~doc:
            "Auto-minimize each written crash bundle through the reduction engine (best effort; \
             adds repro-min.c when the fault reproduces and shrinks).")
  in
  let checked =
    Arg.(
      value & flag
      & info [ "checked" ]
          ~doc:
            "Validate the IR after every optimization pass; a pass emitting invalid IR \
             quarantines the case as ir-invalid blaming that pass.")
  in
  let run seed count jobs workers chunk journal run_root inject metrics deadline step_budget
      retries chaos_spec bundle_dir minimize_bundles checked exec =
    set_exec exec;
    let chaos = chaos_plan_of_spec chaos_spec in
    (* the run id folds in everything that shapes the outcomes — jobs and
       workers are excluded on purpose, the report is identical across them *)
    let run_id =
      Campaign.Run_store.run_id ~campaign:"hunt" ~seed ~count
        ((if checked then [ "checked" ] else [])
        @ (match chaos_spec with Some s -> [ "chaos:" ^ s ] | None -> [])
        @ List.map (fun i -> Printf.sprintf "inject:%d" i) inject)
    in
    let run_dir = Option.map (fun root -> Campaign.Run_store.dir_of ~root ~id:run_id) run_root in
    let journal =
      match (journal, run_dir) with
      | (Some _ as j), _ -> j
      | None, Some dir ->
        Dce_support.Fsx.mkdir_p dir;
        Some (Campaign.Run_store.journal_path dir)
      | None, None -> None
    in
    let c =
      Campaign.Corpus.run ?journal ~inject_crash:inject ?deadline ?step_budget ~retries ~chaos
        ~checked ?bundle_dir ~workers ?chunk ~jobs ~seed ~count ()
    in
    let stats = Campaign.Corpus.stats c in
    print_endline (Dce_report.Stats.prevalence stats);
    print_endline "Table 1 (% dead blocks missed):";
    print_string (Dce_report.Stats.table1 stats);
    print_endline "Table 2 (% dead blocks primary missed):";
    print_string (Dce_report.Stats.table2 stats);
    print_string (Dce_report.Stats.differential_summary stats);
    print_endline "Markers eliminated per stage at -O3 (pass attribution):";
    print_string (Dce_report.Stats.attribution_table stats);
    let interesting =
      List.filter (fun (f : Dce_report.Stats.finding) -> f.Dce_report.Stats.f_primary)
        stats.Dce_report.Stats.findings
    in
    Printf.printf "%d primary cross-compiler findings; first few:\n" (List.length interesting);
    List.iter
      (fun (f : Dce_report.Stats.finding) ->
        Printf.printf "  program %d marker %d: %s %s misses, %s eliminates\n"
          f.Dce_report.Stats.f_program f.Dce_report.Stats.f_marker f.Dce_report.Stats.f_compiler
          (C.Level.to_string f.Dce_report.Stats.f_level)
          f.Dce_report.Stats.f_witness)
      (Dce_support.Listx.take 10 interesting);
    print_epilogue ~metrics ~quarantine:c.Campaign.Corpus.c_quarantine
      ~quarantine_text:(Campaign.Corpus.quarantine_to_string c)
      ~resumed:c.Campaign.Corpus.c_resumed c.Campaign.Corpus.c_metrics;
    (match bundle_dir with
     | Some dir when c.Campaign.Corpus.c_quarantine <> [] ->
       Printf.printf "crash bundles written under %s/\n" dir;
       if minimize_bundles then begin
         let checked = checked || Campaign.Chaos.has_corrupt chaos in
         let still_faulty prog =
           (* replay under the same budgets so a hanging repro times out the
              same way it did in the campaign *)
           let guard = Dce_support.Guard.create ?deadline ?steps:step_budget () in
           match Dce_support.Guard.with_guard guard (fun () -> Core.Analysis.run ~checked prog) with
           | _ -> false
           | exception _ -> true
         in
         let n = Dce_reduce.Minimize_bundle.minimize_dir ~still_faulty ~dir () in
         Printf.printf "%d bundle(s) auto-minimized\n" n
       end
     | _ -> ());
    match run_root with
    | None -> ()
    | Some root ->
      let report = Campaign.Corpus.report ~campaign:"hunt" ~seed ~count c in
      let meta =
        Campaign.Json.Obj
          [
            ("campaign", Campaign.Json.String "hunt");
            ("seed", Campaign.Json.Int seed);
            ("count", Campaign.Json.Int count);
            ("checked", Campaign.Json.Bool checked);
            ( "chaos",
              match chaos_spec with
              | Some s -> Campaign.Json.String s
              | None -> Campaign.Json.Null );
          ]
      in
      let report_text = Campaign.Corpus.report_text c in
      let dir =
        Campaign.Run_store.write ~report_text ~root ~id:run_id ~meta
          ~metrics:c.Campaign.Corpus.c_metrics report
      in
      Printf.printf "run artifacts written to %s\n" dir
  in
  Cmd.v
    (Cmd.info "hunt"
       ~doc:
         "Generate a corpus and run the full differential campaign over it — sharded over \
          $(b,--jobs) worker domains, fault isolated, supervised via $(b,--deadline) / \
          $(b,--step-budget) / $(b,--retries), chaos-testable via $(b,--chaos), and resumable \
          via $(b,--journal) — and optionally forked over $(b,--workers) persistent worker \
          processes with dynamic work stealing.")
    Term.(
      const run $ seed $ count $ jobs_arg $ workers_arg $ chunk_arg $ journal_arg $ run_root_arg
      $ inject $ metrics_arg $ deadline_arg $ step_budget_arg $ retries_arg $ chaos $ bundle_dir
      $ minimize_bundles $ checked $ exec_arg)

(* ---------- triage ---------- *)

let triage_cmd =
  let seed = Arg.(value & opt int 20220228 & info [ "seed" ] ~docv:"N") in
  let count = Arg.(value & opt int 50 & info [ "count" ] ~docv:"N") in
  let run seed count jobs workers chunk journal metrics deadline step_budget retries exec =
    set_exec exec;
    let c =
      Campaign.Corpus.run ?journal ?deadline ?step_budget ~retries ~workers ?chunk ~jobs ~seed
        ~count ()
    in
    let stats = Campaign.Corpus.stats c in
    let programs = Campaign.Corpus.instrumented_programs c in
    let reports =
      Dce_report.Triage.triage ~programs
        (stats.Dce_report.Stats.findings @ stats.Dce_report.Stats.regression_findings)
    in
    print_string (Dce_report.Triage.table5 reports);
    print_endline "report clusters:";
    List.iter
      (fun r ->
        Printf.printf "  %-9s %-4s %-28s %-22s %-12s %-9s x%d (program %d, marker %d)\n"
          r.Dce_report.Triage.r_compiler
          (C.Level.to_string r.Dce_report.Triage.r_level)
          r.Dce_report.Triage.r_signature
          (match r.Dce_report.Triage.r_component with Some c -> c | None -> "-")
          (match r.Dce_report.Triage.r_guilty_stage with Some s -> s | None -> "-")
          (Dce_report.Triage.status_name r.Dce_report.Triage.r_status)
          r.Dce_report.Triage.r_occurrences r.Dce_report.Triage.r_example_program
          r.Dce_report.Triage.r_example_marker)
      reports;
    print_epilogue ~metrics ~quarantine:c.Campaign.Corpus.c_quarantine
      ~quarantine_text:(Campaign.Corpus.quarantine_to_string c)
      ~resumed:c.Campaign.Corpus.c_resumed c.Campaign.Corpus.c_metrics
  in
  Cmd.v
    (Cmd.info "triage"
       ~doc:
         "Run the full reporting pipeline on a generated corpus: differential campaign, \
          root-cause diagnosis, deduplication into reports, and Table-5 style statuses.")
    Term.(
      const run $ seed $ count $ jobs_arg $ workers_arg $ chunk_arg $ journal_arg $ metrics_arg
      $ deadline_arg $ step_budget_arg $ retries_arg $ exec_arg)

(* ---------- value-hunt (the §4.4 extension) ---------- *)

let value_hunt_cmd =
  let file_opt =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE.c"
          ~doc:"Single-program mode; omit to run a generated-corpus campaign instead.")
  in
  let seed = Arg.(value & opt int 20220228 & info [ "seed" ] ~docv:"N") in
  let count = Arg.(value & opt int 30 & info [ "count" ] ~docv:"N") in
  let run_file path =
    let prog = read_program path in
    match Core.Value_instrument.instrument prog with
    | None -> print_endline "profiling failed (trap or non-termination)"
    | Some (vi, stats) ->
      Printf.printf "// %d probes, %d dead value checks planted\n"
        stats.Core.Value_instrument.probes_inserted stats.Core.Value_instrument.checks_planted;
      print_string (Dce_minic.Pretty.program_to_string vi);
      List.iter
        (fun compiler ->
          List.iter
            (fun level ->
              let surv = C.Compiler.surviving_markers compiler level vi in
              Printf.printf "%-9s %-4s keeps value checks {%s}\n" compiler.C.Compiler.name
                (C.Level.to_string level)
                (String.concat "," (List.map string_of_int surv)))
            C.Level.all)
        [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ]
  in
  let run_corpus seed count jobs workers chunk journal metrics deadline step_budget retries =
    let v =
      Campaign.Corpus.run_value ?journal ?deadline ?step_budget ~retries ~workers ?chunk ~jobs
        ~seed ~count ()
    in
    print_string (Campaign.Corpus.value_table v);
    let quarantine_text =
      String.concat ""
        (List.map
           (fun (q : Campaign.Engine.quarantined) ->
             Printf.sprintf "  case %d (seed %d): crashed in stage %s: %s\n"
               q.Campaign.Engine.q_case
               v.Campaign.Corpus.v_seeds.(q.Campaign.Engine.q_case)
               q.Campaign.Engine.q_stage q.Campaign.Engine.q_error)
           v.Campaign.Corpus.v_quarantine)
    in
    print_epilogue ~metrics ~quarantine:v.Campaign.Corpus.v_quarantine ~quarantine_text
      ~resumed:v.Campaign.Corpus.v_resumed v.Campaign.Corpus.v_metrics
  in
  let run path seed count jobs workers chunk journal metrics deadline step_budget retries exec =
    set_exec exec;
    match path with
    | Some path -> run_file path
    | None -> run_corpus seed count jobs workers chunk journal metrics deadline step_budget retries
  in
  Cmd.v
    (Cmd.info "value-hunt"
       ~doc:
         "Plant profiled value checks after loops (the paper's future-work mode) and show which \
          configurations prove them — on one file, or as a campaign over a generated corpus.")
    Term.(
      const run $ file_opt $ seed $ count $ jobs_arg $ workers_arg $ chunk_arg $ journal_arg
      $ metrics_arg $ deadline_arg $ step_budget_arg $ retries_arg $ exec_arg)

(* ---------- size-hunt ---------- *)

let size_hunt_cmd =
  let seed = Arg.(value & opt int 20220228 & info [ "seed" ] ~docv:"N") in
  let count = Arg.(value & opt int 50 & info [ "count" ] ~docv:"N") in
  let ratio =
    Arg.(
      value & opt float 1.25
      & info [ "ratio" ] ~docv:"R"
          ~doc:
            "Cross-compiler threshold: flag a case when one compiler's -Os output is at least \
             $(docv) times the other's.  A reporting parameter only — the journal stores size \
             curves, so resuming with a different $(docv) re-thresholds without recompiling.")
  in
  let run seed count ratio jobs workers chunk journal metrics deadline step_budget retries exec =
    set_exec exec;
    let s =
      Campaign.Oracle_campaign.run_size ?journal ~ratio ?deadline ?step_budget ~retries ~workers
        ?chunk ~jobs ~seed ~count ()
    in
    print_string (Campaign.Oracle_campaign.size_report s);
    print_epilogue ~metrics ~quarantine:s.Campaign.Oracle_campaign.s_quarantine
      ~quarantine_text:(Campaign.Oracle_campaign.size_quarantine_to_string s)
      ~resumed:s.Campaign.Oracle_campaign.s_resumed s.Campaign.Oracle_campaign.s_metrics
  in
  Cmd.v
    (Cmd.info "size-hunt"
       ~doc:
         "Run the code-size oracle over a generated corpus: flag programs where one simulated \
          compiler's -Os output is $(b,--ratio) times larger than the other's, or larger than \
          its own -O2 — sharded over $(b,--jobs) worker domains, resumable via $(b,--journal), \
          with sizes routed through the content-addressed compile cache.")
    Term.(
      const run $ seed $ count $ ratio $ jobs_arg $ workers_arg $ chunk_arg $ journal_arg
      $ metrics_arg $ deadline_arg $ step_budget_arg $ retries_arg $ exec_arg)

(* ---------- level-hunt ---------- *)

let level_hunt_cmd =
  let seed = Arg.(value & opt int 20220228 & info [ "seed" ] ~docv:"N") in
  let count = Arg.(value & opt int 50 & info [ "count" ] ~docv:"N") in
  let bisect =
    Arg.(
      value & flag
      & info [ "bisect" ]
          ~doc:
            "Also bisect every inversion through the keeping level's feature-flag commit \
             history (probe-cached, on the worker pool) and print the offending commits.")
  in
  let run seed count bisect jobs workers chunk journal metrics deadline step_budget retries exec =
    set_exec exec;
    let t =
      Campaign.Oracle_campaign.run_inversion ?journal ?deadline ?step_budget ~retries ~workers
        ?chunk ~jobs ~seed ~count ()
    in
    print_string (Campaign.Oracle_campaign.inversion_report t);
    if bisect then
      print_string
        (Campaign.Oracle_campaign.inv_bisections_table
           (Campaign.Oracle_campaign.bisect_inversions ?deadline ?step_budget ~retries ~jobs t));
    print_epilogue ~metrics ~quarantine:t.Campaign.Oracle_campaign.i_quarantine
      ~quarantine_text:(Campaign.Oracle_campaign.inversion_quarantine_to_string t)
      ~resumed:t.Campaign.Oracle_campaign.i_resumed t.Campaign.Oracle_campaign.i_metrics
  in
  Cmd.v
    (Cmd.info "level-hunt"
       ~doc:
         "Run the level-inversion oracle over a generated corpus: find markers a compiler \
          eliminates at a weak level (-O1/-Os) but keeps at a stronger one (-O2/-O3), \
          attribute each to the pass the strong level is missing, and optionally \
          $(b,--bisect) each inversion to its offending commit.")
    Term.(
      const run $ seed $ count $ bisect $ jobs_arg $ workers_arg $ chunk_arg $ journal_arg
      $ metrics_arg $ deadline_arg $ step_budget_arg $ retries_arg $ exec_arg)

(* ---------- reduce ---------- *)

let reduce_cmd =
  let marker =
    Arg.(
      value
      & opt (some int) None
      & info [ "marker" ] ~docv:"N"
          ~doc:"Marker to preserve (required for $(b,--oracle) markers and inversion).")
  in
  let oracle =
    Arg.(
      value & opt string "markers"
      & info [ "oracle" ] ~docv:"markers|size|inversion"
          ~doc:
            "Which finding the reduction must preserve.  $(b,markers) (default): \
             $(b,--missed-by)/$(b,--missed-at) keeps marker $(b,--marker), \
             $(b,--eliminated-by)/$(b,--eliminated-at) kills it.  $(b,size): \
             $(b,--missed-by)/$(b,--missed-at) names the larger config, \
             $(b,--eliminated-by)/$(b,--eliminated-at) the smaller (e.g. --missed-by gcc \
             --missed-at Os --eliminated-by llvm --eliminated-at Os; use the same compiler at \
             Os vs O2 with --min-ratio 1.0 for an intra finding).  $(b,inversion): \
             $(b,--missed-by) is the compiler, $(b,--missed-at) the level keeping \
             $(b,--marker), $(b,--eliminated-at) the weaker level killing it.")
  in
  let min_ratio =
    Arg.(
      value & opt float 1.25
      & info [ "min-ratio" ] ~docv:"R"
          ~doc:"Size oracle only: the reduced program must keep larger >= $(docv) * smaller.")
  in
  let min_gap =
    Arg.(
      value & opt int 1
      & info [ "min-gap" ] ~docv:"N"
          ~doc:
            "Size oracle only: absolute instruction-count floor on the gap (stops tiny \
             programs passing on ratio alone).")
  in
  let keeper = Arg.(value & opt string "gcc" & info [ "missed-by" ] ~docv:"gcc|llvm") in
  let keeper_level = Arg.(value & opt string "O3" & info [ "missed-at" ] ~docv:"O0..O3") in
  let elim = Arg.(value & opt string "llvm" & info [ "eliminated-by" ] ~docv:"gcc|llvm") in
  let elim_level = Arg.(value & opt string "O3" & info [ "eliminated-at" ] ~docv:"O0..O3") in
  let max_tests = Arg.(value & opt int 4000 & info [ "max-tests" ] ~docv:"N") in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print engine statistics on stderr: per-stage hit/reject counters, verdict- and \
             compile-cache counters, pipeline executions vs the naive predicate, and per-stage \
             wall-time percentiles.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Disable the content-addressed verdict cache (every charged candidate re-evaluates). \
             The reduction result is identical either way; this exists for measurement.")
  in
  let run path marker oracle min_ratio min_gap keeper keeper_level elim elim_level max_tests jobs
      journal stats no_cache exec =
    set_exec exec;
    let prog = read_program path in
    let prog =
      if Dce_minic.Ast.markers_of_program prog = [] then Core.Instrument.program prog else prog
    in
    let mk ~cflag ~lflag c l =
      {
        Core.Differential.compiler = compiler_of_string ~flag:cflag c;
        level = level_of_string ~flag:lflag l;
        version = None;
      }
    in
    let keep = mk ~cflag:"--missed-by" ~lflag:"--missed-at"
    and kill = mk ~cflag:"--eliminated-by" ~lflag:"--eliminated-at" in
    let required_marker () =
      match marker with
      | Some m -> m
      | None -> failwith (Printf.sprintf "--marker is required with --oracle %s" oracle)
    in
    let predicate =
      match oracle with
      | "markers" ->
        Dce_reduce.Predicate.marker_diff ~compile_cache:(not no_cache)
          ~keep_missed_by:(keep keeper keeper_level) ~eliminated_by:(kill elim elim_level)
          ~marker:(required_marker ()) ()
      | "size" ->
        Dce_reduce.Predicate.size_gap ~compile_cache:(not no_cache)
          ~larger:(keep keeper keeper_level) ~smaller:(kill elim elim_level) ~min_ratio ~min_gap ()
      | "inversion" ->
        Dce_reduce.Predicate.level_inversion ~compile_cache:(not no_cache)
          ~compiler:(compiler_of_string ~flag:"--missed-by" keeper)
          ~low:(level_of_string ~flag:"--eliminated-at" elim_level)
          ~high:(level_of_string ~flag:"--missed-at" keeper_level)
          ~marker:(required_marker ()) ()
      | other ->
        failwith
          (Printf.sprintf "--oracle: unknown oracle %S (use markers, size, or inversion)" other)
    in
    let result =
      Dce_reduce.Engine.reduce ~max_tests ~jobs ~cache:(not no_cache) ?journal ~predicate prog
    in
    Printf.printf "// reduced in %d rounds, %d predicate runs (size %d -> %d)\n"
      result.Dce_reduce.Engine.rounds result.Dce_reduce.Engine.tests_run
      result.Dce_reduce.Engine.initial_size result.Dce_reduce.Engine.final_size;
    print_string (Dce_minic.Pretty.program_to_string result.Dce_reduce.Engine.program);
    if stats then begin
      let s = result.Dce_reduce.Engine.stats in
      prerr_string (Dce_reduce.Engine.stats_to_string s);
      prerr_string (Campaign.Metrics.to_string s.Dce_reduce.Engine.s_metrics)
    end
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:
         "Shrink a test case while preserving a finding of the chosen $(b,--oracle): a marker \
          difference between two configurations (default), a code-size gap, or a level \
          inversion.  The engine stages the predicate cheapest-check-first, memoizes verdicts \
          and compiles by content hash, and searches candidates on a worker pool ($(b,--jobs)); \
          results are byte-identical for every jobs value and cache setting.")
    Term.(
      const run $ file_arg $ marker $ oracle $ min_ratio $ min_gap $ keeper $ keeper_level $ elim
      $ elim_level $ max_tests $ jobs_arg $ journal_arg $ stats $ no_cache $ exec_arg)

(* ---------- bisect ---------- *)

let bisect_cmd =
  let marker = Arg.(required & opt (some int) None & info [ "marker" ] ~docv:"N") in
  let comp = Arg.(value & opt string "gcc" & info [ "compiler" ] ~docv:"gcc|llvm") in
  let level = Arg.(value & opt string "O3" & info [ "level" ] ~docv:"O0..O3") in
  let run path marker comp level =
    let prog = read_program path in
    let prog =
      if Dce_minic.Ast.markers_of_program prog = [] then Core.Instrument.program prog else prog
    in
    let compiler = compiler_of_string comp in
    match
      Dce_bisect.Bisect.find_regression compiler (level_of_string level) prog ~marker
    with
    | Dce_bisect.Bisect.Not_missed -> print_endline "marker is eliminated at HEAD: nothing to bisect"
    | Dce_bisect.Bisect.Always_missed -> print_endline "missed at every version: not a regression"
    | Dce_bisect.Bisect.Regression r ->
      let c = r.Dce_bisect.Bisect.offending in
      Printf.printf "regression introduced at version %d (last good %d, %d probes)\n"
        r.Dce_bisect.Bisect.offending_index r.Dce_bisect.Bisect.last_good
        r.Dce_bisect.Bisect.compilations;
      Printf.printf "offending commit %s: %s\n  component: %s\n  files: %s\n" c.C.Version.id
        c.C.Version.summary c.C.Version.component
        (String.concat ", " c.C.Version.files)
  in
  Cmd.v (Cmd.info "bisect" ~doc:"Bisect a missed marker to the commit that introduced it.")
    Term.(const run $ file_arg $ marker $ comp $ level)

(* ---------- bisect-campaign ---------- *)

let bisect_campaign_cmd =
  let seed = Arg.(value & opt int 20220228 & info [ "seed" ] ~docv:"N") in
  let count = Arg.(value & opt int 50 & info [ "count" ] ~docv:"N") in
  let level = Arg.(value & opt string "O3" & info [ "level" ] ~docv:"O0..O3") in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Disable the content-addressed probe cache (every probe recompiles).  Outcomes and \
             probe counts are identical either way; this exists for measurement.")
  in
  let run seed count level jobs workers chunk journal metrics no_cache deadline step_budget
      retries exec =
    set_exec exec;
    let corpus = Campaign.Corpus.run ~workers ?chunk ~jobs ~seed ~count () in
    let b =
      Campaign.Bisect_campaign.run
        ?journal
        ~cache:(not no_cache)
        ~level:(level_of_string level) ?deadline ?step_budget ~retries ~workers ?chunk ~jobs
        corpus
    in
    print_string (Campaign.Bisect_campaign.summary b);
    print_string (Campaign.Bisect_campaign.component_tables b);
    print_epilogue ~metrics ~quarantine:b.Campaign.Bisect_campaign.b_quarantine
      ~quarantine_text:(Campaign.Bisect_campaign.quarantine_to_string b)
      ~resumed:b.Campaign.Bisect_campaign.b_resumed b.Campaign.Bisect_campaign.b_metrics
  in
  Cmd.v
    (Cmd.info "bisect-campaign"
       ~doc:
         "Run the differential campaign over a generated corpus, then bisect every \
          (case, missed-marker) pair to its offending commit — sharded over $(b,--jobs) worker \
          domains, probe-cached, resumable via $(b,--journal) — and aggregate the offending \
          commits into the paper's component tables (Tables 3/4).")
    Term.(
      const run $ seed $ count $ level $ jobs_arg $ workers_arg $ chunk_arg $ journal_arg
      $ metrics_arg $ no_cache $ deadline_arg $ step_budget_arg $ retries_arg $ exec_arg)

(* ---------- repair ---------- *)

let repair_cmd =
  let marker =
    Arg.(
      value
      & opt (some int) None
      & info [ "marker" ] ~docv:"N" ~doc:"The missed (dead but surviving) marker to repair.")
  in
  let comp = Arg.(value & opt string "gcc" & info [ "compiler" ] ~docv:"gcc|llvm") in
  let level = Arg.(value & opt string "O3" & info [ "level" ] ~docv:"O0..O3") in
  let seed =
    Arg.(
      value & opt int 20220228
      & info [ "seed" ] ~docv:"N" ~doc:"Smoke-corpus seed for the verification campaigns.")
  in
  let count =
    Arg.(
      value & opt int 20
      & info [ "count" ] ~docv:"N" ~doc:"Smoke-corpus size for the verification campaigns.")
  in
  let verify_limit =
    Arg.(
      value & opt int 3
      & info [ "verify-limit" ] ~docv:"N"
          ~doc:
            "How many passing candidates get a full verification campaign before the search \
             gives up (each costs a patched-compiler sweep over the smoke corpus).")
  in
  let max_pairs =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-pairs" ] ~docv:"N"
          ~doc:"Probe budget for the pair stage of the search (default 64).")
  in
  let run path marker comp level seed count verify_limit max_pairs jobs workers chunk run_root
      exec =
    set_exec exec;
    let marker =
      match marker with
      | Some m -> m
      | None -> failwith "--marker is required: name the missed marker to repair"
    in
    let prog = read_program path in
    let prog =
      if Dce_minic.Ast.markers_of_program prog = [] then Core.Instrument.program prog else prog
    in
    let compiler = compiler_of_string comp in
    let level = level_of_string level in
    let r =
      Dce_repair.Driver.run ~jobs ~workers ?chunk ~seed ~count ~verify_limit
        ?max_pairs:(match max_pairs with Some _ -> max_pairs | None -> None)
        ?run_root compiler level prog ~marker
    in
    let s = r.Dce_repair.Driver.rr_search in
    Printf.printf "search: %d probe(s) (%d single(s), %d pair(s)), %d passing candidate(s)%s\n"
      s.Dce_repair.Search.so_probes s.Dce_repair.Search.so_singles s.Dce_repair.Search.so_pairs
      (List.length s.Dce_repair.Search.so_passing)
      (match s.Dce_repair.Search.so_guilty_stage with
       | Some g -> Printf.sprintf "; guilty stage %s" g
       | None -> "");
    List.iter
      (fun cv ->
        Printf.printf "candidate %s: %s\n"
          (String.concat "+" cv.Dce_repair.Driver.cv_edits)
          (if cv.Dce_repair.Driver.cv_clean then "verified clean on the smoke corpus"
           else "REJECTED (regressions on the smoke corpus)"))
      r.Dce_repair.Driver.rr_tried;
    (match r.Dce_repair.Driver.rr_accepted with
     | Some (edits, verdict) ->
       Printf.printf "repair: %s\n"
         (String.concat " + " (List.map (fun e -> e.Core.Diagnose.repair_name) edits));
       print_string (Campaign.Run_diff.render verdict)
     | None -> print_endline "no verified repair found");
    print_endline (Campaign.Json.to_string (Dce_repair.Driver.record_to_json r));
    (match Dce_repair.Driver.write_record r with
     | Some path -> Printf.printf "repair record written to %s\n" path
     | None -> ());
    match (r.Dce_repair.Driver.rr_base_dir, r.Dce_repair.Driver.rr_patched_dir) with
    | Some a, Some b ->
      Printf.printf "reproduce the verdict: dce_hunt campaign-diff --run-a %s --run-b %s\n" a b
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Close the loop on a reduced repro: search minimal pipeline-feature edits (guilty \
          component first, then single flags, then bounded pairs — every probe through the \
          compile cache) under which the compiler eliminates marker $(b,--marker), then verify \
          each passing candidate with a patched-compiler campaign over the smoke corpus and \
          accept only a candidate whose campaign diff shows no regressions.  The printed repair \
          record is byte-identical across $(b,--jobs) and $(b,--workers).")
    Term.(
      const run $ file_arg $ marker $ comp $ level $ seed $ count $ verify_limit $ max_pairs
      $ jobs_arg $ workers_arg $ chunk_arg $ run_root_arg $ exec_arg)

(* ---------- campaign-diff ---------- *)

let campaign_diff_cmd =
  let run_a =
    Arg.(
      required
      & opt (some string) None
      & info [ "run-a" ] ~docv:"DIR" ~doc:"Baseline run directory (as written by --run-root).")
  in
  let run_b =
    Arg.(
      required
      & opt (some string) None
      & info [ "run-b" ] ~docv:"DIR" ~doc:"Candidate run directory to compare against --run-a.")
  in
  let run run_a run_b =
    let a = Campaign.Run_store.load_report run_a in
    let b = Campaign.Run_store.load_report run_b in
    let v = Campaign.Run_diff.diff a b in
    let stage_deltas =
      Campaign.Run_diff.stage_deltas
        (Campaign.Run_store.load_stage_totals run_a)
        (Campaign.Run_store.load_stage_totals run_b)
    in
    print_string (Campaign.Run_diff.render ~stage_deltas v);
    print_endline (Campaign.Json.to_string (Campaign.Run_diff.to_json ~stage_deltas v));
    if Campaign.Run_diff.has_regressions v then exit 1
  in
  Cmd.v
    (Cmd.info "campaign-diff"
       ~doc:
         "Compare two persisted campaign runs table by table: new and fixed misses, new and \
          fixed level inversions, per-cell size deltas (growth at -Os is a regression), new \
          quarantines, and informational per-stage timing deltas.  Prints the human tables and \
          one machine-readable JSON verdict line; exits 1 when run B regresses run A, so the \
          verdict can gate CI.")
    Term.(const run $ run_a $ run_b)

(* ---------- explain ---------- *)

let explain_cmd =
  let comp = Arg.(value & opt string "gcc" & info [ "compiler" ] ~docv:"gcc|llvm") in
  let level = Arg.(value & opt string "O2" & info [ "level" ] ~docv:"O0..O3") in
  let history = Arg.(value & flag & info [ "history" ] ~doc:"Also print the commit history.") in
  let trace =
    Arg.(
      value
      & opt (some file) None
      & info [ "trace" ] ~docv:"FILE.c"
          ~doc:
            "Compile $(docv) (instrumenting it if it has no markers) and print the executed \
             stage trace: per-stage wall time, IR deltas, and markers eliminated.")
  in
  let run comp level history trace =
    let compiler = compiler_of_string comp in
    let lv = level_of_string level in
    let feats = C.Compiler.features compiler lv in
    Printf.printf "%s %s features: %s\n" compiler.C.Compiler.name (C.Level.to_string lv)
      (C.Features.describe feats);
    Printf.printf "pass schedule: %s\n" (String.concat " -> " (C.Pipeline.stage_names feats));
    (match trace with
     | None -> ()
     | Some path ->
       let prog = read_program path in
       let prog =
         if Dce_minic.Ast.markers_of_program prog = [] then Core.Instrument.program prog
         else prog
       in
       let _, t = C.Compiler.compile_traced compiler lv prog in
       Printf.printf "stage trace of %s (%d of %d scheduled stages executed):\n" path
         (List.length t)
         (List.length (C.Pipeline.stage_names feats));
       print_string (C.Passmgr.trace_to_string t));
    if history then begin
      Printf.printf "history (%d commits, HEAD at %d):\n"
        (List.length compiler.C.Compiler.history)
        (C.Compiler.head compiler);
      List.iteri
        (fun i (c : C.Version.commit) ->
          Printf.printf "  v%-3d %s %-28s [%s]%s\n" (i + 1) c.C.Version.id
            c.C.Version.component c.C.Version.summary
            (if c.C.Version.post_head then " (post-HEAD fix)" else ""))
        compiler.C.Compiler.history
    end
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show a configuration's features, schedule, history, and per-program stage trace.")
    Term.(const run $ comp $ level $ history $ trace)

(* ---------- the campaign service: serve + client subcommands ---------- *)

module Serve = Dce_serve
module Json = Campaign.Json

let spool_arg =
  Arg.(
    value & opt string "dce-spool"
    & info [ "spool" ] ~docv:"DIR"
        ~doc:
          "Service spool directory: the job queue ($(docv)/jobs), run artifacts ($(docv)/runs), \
           the daemon lock, and the default socket ($(docv)/serve.sock).")

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon socket path (default: $(b,--spool)/serve.sock).")

let serve_socket spool socket =
  match socket with Some s -> s | None -> Filename.concat spool "serve.sock"

let json_str k j = Option.bind (Json.member k j) Json.to_str
let json_int k j = Option.bind (Json.member k j) Json.to_int

let print_job_line j =
  Printf.printf "%-12s %-10s %-10s %-10s strikes=%d seed=%d count=%d%s%s\n"
    (Option.value ~default:"?" (json_str "job" j))
    (Option.value ~default:"?" (json_str "kind" j))
    (Option.value ~default:"?" (json_str "lane" j))
    (Option.value ~default:"?" (json_str "state" j))
    (Option.value ~default:0 (json_int "strikes" j))
    (Option.value ~default:0 (json_int "seed" j))
    (Option.value ~default:0 (json_int "count" j))
    (match json_int "progress" j with
     | Some p -> Printf.sprintf " progress=%d" p
     | None -> "")
    (match json_str "reason" j with Some r -> Printf.sprintf " (%s)" r | None -> "")

let serve_cmd =
  let workers =
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N" ~doc:"Fabric worker processes per job.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains per job.")
  in
  let slots =
    Arg.(value & opt int 1 & info [ "slots" ] ~docv:"N" ~doc:"Jobs running concurrently.")
  in
  let grace =
    Arg.(
      value & opt float 5.0
      & info [ "drain-grace" ] ~docv:"SECONDS"
          ~doc:"Drain patience between SIGTERM and SIGKILL for in-flight jobs.")
  in
  let backoff =
    Arg.(
      value & opt float 0.5
      & info [ "backoff" ] ~docv:"SECONDS"
          ~doc:"Retry backoff base; strike $(i,k) waits $(docv)*2^(k-1).")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"PLAN"
          ~doc:
            "Service-level fault injection: $(b,kill-job@N) SIGKILLs the running job's process \
             group once its journal shows N cases; $(b,crash-daemon@N) exits the daemon without \
             cleanup at that point.  Comma-separate to combine.  Each fires once.")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the supervision log.") in
  let run spool socket workers jobs slots grace backoff chaos quiet =
    let chaos =
      Option.map
        (fun s ->
          match Serve.Daemon.parse_chaos s with Ok c -> c | Error msg -> failwith msg)
        chaos
    in
    Serve.Daemon.run
      {
        (Serve.Daemon.default ~spool) with
        Serve.Daemon.cf_socket = socket;
        cf_workers = workers;
        cf_jobs = jobs;
        cf_slots = slots;
        cf_drain_grace = grace;
        cf_backoff = backoff;
        cf_chaos = chaos;
        cf_quiet = quiet;
      }
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the campaign service daemon: accept jobs over a Unix socket, supervise them in \
          forked children, journal every queue transition, survive kill -9.")
    Term.(
      const run $ spool_arg $ socket_arg $ workers $ jobs $ slots $ grace $ backoff $ chaos
      $ quiet)

let job_pos_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"JOB")

let submit_cmd =
  let kind =
    Arg.(
      value & opt string "hunt"
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"Campaign kind: hunt, triage, size-hunt, level-hunt, bisect, or reduce.")
  in
  let seed = Arg.(value & opt int 20220228 & info [ "seed" ] ~docv:"N") in
  let count = Arg.(value & opt int 50 & info [ "count" ] ~docv:"N") in
  let lane =
    Arg.(
      value & opt string "default"
      & info [ "lane" ] ~docv:"NAME"
          ~doc:
            "Fair-queueing lane.  The daemon round-robins across lanes, so one lane's backlog \
             cannot starve another's.")
  in
  let job_deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "job-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Whole-job wall budget, daemon-enforced: the job's process group is killed when it \
             expires (and the job is failed, not retried — a deadline trips deterministically).")
  in
  let case_deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Per-case cooperative Guard deadline.")
  in
  let strikes =
    Arg.(
      value & opt int 2
      & info [ "strikes" ] ~docv:"N"
          ~doc:"Attempts before the job is quarantined (default 2: two strikes).")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"PLAN" ~doc:"Campaign-level chaos plan (hunt jobs only).")
  in
  let source =
    Arg.(
      value
      & opt (some file) None
      & info [ "source" ] ~docv:"FILE.c" ~doc:"Reduce jobs: the program to reduce.")
  in
  let marker =
    Arg.(
      value
      & opt (some int) None
      & info [ "marker" ] ~docv:"N" ~doc:"Reduce jobs: the marker to preserve.")
  in
  let run spool socket kind seed count lane job_deadline case_deadline step_budget retries strikes
      chaos source marker =
    let kind =
      match Serve.Job.kind_of_string kind with
      | Some k -> k
      | None -> failwith (Printf.sprintf "unknown job kind %S" kind)
    in
    let source =
      Option.map
        (fun path ->
          let ic = open_in_bin path in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          s)
        source
    in
    let spec =
      {
        Serve.Job.sp_kind = kind;
        sp_seed = seed;
        sp_count = count;
        sp_lane = lane;
        sp_deadline = job_deadline;
        sp_case_deadline = case_deadline;
        sp_step_budget = step_budget;
        sp_retries = retries;
        sp_strikes = strikes;
        sp_chaos = chaos;
        sp_source = source;
        sp_marker = marker;
      }
    in
    match Serve.Client.submit ~socket:(serve_socket spool socket) spec with
    | Ok id -> print_endline id
    | Error e -> failwith e
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"Submit a campaign job to the service; prints the job id.")
    Term.(
      const run $ spool_arg $ socket_arg $ kind $ seed $ count $ lane $ job_deadline
      $ case_deadline $ step_budget_arg $ retries_arg $ strikes $ chaos $ source $ marker)

let status_cmd =
  let job = Arg.(value & pos 0 (some string) None & info [] ~docv:"JOB") in
  let run spool socket job =
    let socket = serve_socket spool socket in
    match Serve.Client.status ?job ~socket () with
    | Error e -> failwith e
    | Ok j -> (
      match job with
      | Some _ -> (
        match Json.member "job_status" j with
        | Some js -> print_job_line js
        | None -> failwith "malformed response")
      | None ->
        (match Json.member "daemon" j with
         | Some d ->
           Printf.printf "daemon: up %.1fs, %d running / %d queued, slots=%d%s\n"
             (Option.value ~default:0.
                (Option.bind (Json.member "uptime" d) (function
                  | Json.Float f -> Some f
                  | Json.Int i -> Some (float_of_int i)
                  | _ -> None)))
             (Option.value ~default:0 (json_int "running" d))
             (Option.value ~default:0 (json_int "queued" d))
             (Option.value ~default:0 (json_int "slots" d))
             (match Json.member "draining" d with
              | Some (Json.Bool true) -> " (draining)"
              | _ -> "")
         | None -> ());
        (match Json.member "jobs" j with
         | Some (Json.List js) -> List.iter print_job_line js
         | _ -> ()))
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Show the daemon and its jobs (or one job).")
    Term.(const run $ spool_arg $ socket_arg $ job)

let watch_cmd =
  let run spool socket job =
    let socket = serve_socket spool socket in
    let on_event ev =
      match json_str "event" ev with
      | Some "progress" ->
        Printf.printf "%s: %d/%d (%s)\n" job
          (Option.value ~default:0 (json_int "done" ev))
          (Option.value ~default:0 (json_int "total" ev))
          (Option.value ~default:"?" (json_str "state" ev));
        flush stdout
      | _ -> ()
    in
    match Serve.Client.watch ~socket ~job ~on_event with
    | Ok j ->
      Printf.printf "%s: %s\n" job (Option.value ~default:"finished" (json_str "state" j))
    | Error e -> failwith e
  in
  Cmd.v
    (Cmd.info "watch" ~doc:"Stream a job's progress until it finishes.")
    Term.(const run $ spool_arg $ socket_arg $ job_pos_arg)

let cancel_cmd =
  let run spool socket job =
    match Serve.Client.cancel ~socket:(serve_socket spool socket) ~job with
    | Ok _ -> Printf.printf "%s: cancel requested\n" job
    | Error e -> failwith e
  in
  Cmd.v
    (Cmd.info "cancel"
       ~doc:
         "Cancel a job: dequeue it if still queued, SIGTERM its process group if running.")
    Term.(const run $ spool_arg $ socket_arg $ job_pos_arg)

let result_cmd =
  let report = Arg.(value & flag & info [ "report" ] ~doc:"Also print the full report text.") in
  let run spool socket job report =
    match Serve.Client.result_ ~socket:(serve_socket spool socket) ~job with
    | Error e -> failwith e
    | Ok j ->
      let state = Option.value ~default:"?" (json_str "state" j) in
      Printf.printf "%s: %s\n" job state;
      (match Json.member "outcome" j with
       | Some (Json.Obj _ as oc) ->
         let o = Serve.Runjob.outcome_of_json oc in
         (match o.Serve.Runjob.oc_run_dir with
          | Some d -> Printf.printf "run dir: %s\n" d
          | None -> ());
         Printf.printf "cases=%d resumed=%d quarantined=%d findings=%d\n"
           o.Serve.Runjob.oc_cases o.Serve.Runjob.oc_resumed o.Serve.Runjob.oc_quarantined
           o.Serve.Runjob.oc_findings;
         if o.Serve.Runjob.oc_summary <> "" then print_endline o.Serve.Runjob.oc_summary
       | _ ->
         (match Option.bind (Json.member "job_status" j) (json_str "reason") with
          | Some r -> Printf.printf "reason: %s\n" r
          | None -> ()));
      if report then
        match Json.member "report" j with
        | Some (Json.String t) -> print_string t
        | _ -> ()
  in
  Cmd.v
    (Cmd.info "result" ~doc:"Fetch a finished job's outcome (and optionally its report).")
    Term.(const run $ spool_arg $ socket_arg $ job_pos_arg $ report)

let shutdown_cmd =
  let run spool socket =
    match Serve.Client.shutdown ~socket:(serve_socket spool socket) with
    | Ok _ -> print_endline "daemon draining"
    | Error e -> failwith e
  in
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:"Ask the daemon to drain: finish in-flight jobs, persist the queue, exit.")
    Term.(const run $ spool_arg $ socket_arg)

(* ---------- runs: enumerate and prune the run store ---------- *)

let runs_root_pos = Arg.(required & pos 0 (some string) None & info [] ~docv:"ROOT")

let runs_list_cmd =
  let run root =
    let entries = Campaign.Run_store.list_runs ~root in
    if entries = [] then print_endline "no runs"
    else begin
      Printf.printf "%-20s %-12s %-10s %6s %6s %8s\n" "RUN" "CAMPAIGN" "SEED" "COUNT" "CASES"
        "AGE";
      let now = Unix.gettimeofday () in
      List.iter
        (fun e ->
          let age = now -. e.Campaign.Run_store.e_mtime in
          let age_s =
            if age > 86400. then Printf.sprintf "%.1fd" (age /. 86400.)
            else if age > 3600. then Printf.sprintf "%.1fh" (age /. 3600.)
            else if age > 60. then Printf.sprintf "%.1fm" (age /. 60.)
            else Printf.sprintf "%.0fs" (Float.max age 0.)
          in
          Printf.printf "%-20s %-12s %-10d %6d %6d %8s\n" e.Campaign.Run_store.e_id
            e.Campaign.Run_store.e_campaign e.Campaign.Run_store.e_seed
            e.Campaign.Run_store.e_count e.Campaign.Run_store.e_cases age_s)
        entries
    end
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List run directories under ROOT, newest first.")
    Term.(const run $ runs_root_pos)

let runs_gc_cmd =
  let keep_last =
    Arg.(
      value
      & opt (some int) None
      & info [ "keep-last" ] ~docv:"N" ~doc:"Protect the $(docv) newest runs; prune the rest.")
  in
  let older_than =
    Arg.(
      value
      & opt (some float) None
      & info [ "older-than" ] ~docv:"SECONDS"
          ~doc:"Prune only candidates whose last write is older than $(docv) seconds.")
  in
  let dry_run =
    Arg.(value & flag & info [ "dry-run" ] ~doc:"Report the victims without deleting them.")
  in
  let run root keep_last older_than dry_run =
    if keep_last = None && older_than = None then
      failwith "runs gc: give --keep-last and/or --older-than (refusing to guess)";
    let victims = Campaign.Run_store.gc ~dry_run ?keep_last ?older_than ~root () in
    if victims = [] then print_endline "nothing to prune"
    else
      List.iter
        (fun id -> Printf.printf "%s %s\n" (if dry_run then "would prune" else "pruned") id)
        victims
  in
  Cmd.v
    (Cmd.info "gc" ~doc:"Prune old run directories by age and/or keep-last-N.")
    Term.(const run $ runs_root_pos $ keep_last $ older_than $ dry_run)

let runs_cmd =
  Cmd.group
    (Cmd.info "runs" ~doc:"Enumerate and prune the per-run artifact store.")
    [ runs_list_cmd; runs_gc_cmd ]

let () =
  let doc = "finding missed optimizations through the lens of dead code elimination" in
  let info = Cmd.info "dce_hunt" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        generate_cmd;
        analyze_cmd;
        compile_cmd;
        hunt_cmd;
        triage_cmd;
        value_hunt_cmd;
        size_hunt_cmd;
        level_hunt_cmd;
        reduce_cmd;
        bisect_cmd;
        bisect_campaign_cmd;
        repair_cmd;
        campaign_diff_cmd;
        explain_cmd;
        serve_cmd;
        submit_cmd;
        status_cmd;
        watch_cmd;
        cancel_cmd;
        result_cmd;
        shutdown_cmd;
        runs_cmd;
      ]
  in
  (* the CLI boundary: argument and input errors surface as one-line usage
     errors naming the offending flag, never as an escaped backtrace *)
  exit
    (try Cmd.eval ~catch:false group with
     | Campaign.Fabric.Interrupted signo ->
       (* fleet killed, journal closed — the campaign resumes from the
          journal on the next run.  Conventional 128+N exit codes. *)
       prerr_endline "dce_hunt: interrupted — worker fleet stopped, journal closed; re-run to resume";
       if signo = Sys.sigterm then 143 else 130
     | Failure msg | Sys_error msg ->
       prerr_endline ("dce_hunt: " ^ msg);
       2)
