(* Bench regression gate: compare freshly generated BENCH_*.json documents
   against the committed baselines.

   Usage: gate.exe BASELINE_DIR FRESH_DIR

   Two classes of check, both walking the documents recursively so nested
   sections (scaling/skew/warm, cache, ...) are covered without the gate
   knowing each file's schema:

   - enforced booleans: a quality bar that passed at the baseline must not
     regress — fresh must have the key, and it must be true if the baseline
     said true.  (meets_5x_bar is deliberately absent: the executor's 5x
     headroom is informational, not a CI promise on shared runners.)

   - higher-is-better numerics: fresh >= baseline - tolerance.  Wall-clock
     noise on CI runners is real, so the tolerance is generous — the gate
     exists to catch collapses (a cache stops caching, scaling goes flat),
     not 10% jitter.

   Keys outside both lists (raw walls, counts, findings) are reported only
   when they disappear, never compared — corpus changes legitimately move
   them.  Exit status 1 on any violation, with every violation listed. *)

module Json = Dce_campaign.Json

let enforced_bools =
  [
    "parity_ok";
    "meets_3x_bar";
    "meets_hit_rate_floor";
    "meets_1_5x_bar";
    "meets_scaling_bar";
    "report_identical";
    "outcomes_identical";
    "found_repair";
    "verified_clean";
  ]

(* key -> slack below the baseline that is still acceptable.  Ratios in
   [0,1] get absolute slack; timing-derived speedups get relative slack
   (40%), since their baselines were measured on a different machine. *)
let numeric_tolerance key =
  match key with
  | "hit_rate" -> Some (`Abs 0.15)
  | "speedup_vs_uncached" | "sibling_reuse" | "speedup_2" | "speedup_4"
  | "dyn_vs_static_speedup" | "search_cache_speedup" ->
    Some (`Rel 0.4)
  | _ -> None

let failures : string list ref = ref []
let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt

let read_doc path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.of_string (String.trim s) with
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "%s: unparseable: %s" path e)

let as_float = function
  | Json.Float f -> Some f
  | Json.Int n -> Some (float_of_int n)
  | _ -> None

(* every (dotted-path, key, value) leaf of the document *)
let rec leaves prefix = function
  | Json.Obj fields ->
    List.concat_map
      (fun (k, v) ->
        let path = if prefix = "" then k else prefix ^ "." ^ k in
        match v with
        | Json.Obj _ | Json.List _ -> leaves path v
        | leaf -> [ (path, k, leaf) ])
      fields
  | Json.List items -> List.concat (List.mapi (fun i v -> leaves (Printf.sprintf "%s[%d]" prefix i) v) items)
  | _ -> []

let check_file name baseline fresh =
  let base_leaves = leaves "" baseline in
  let fresh_leaves = leaves "" fresh in
  let fresh_at path = List.find_opt (fun (p, _, _) -> p = path) fresh_leaves in
  List.iter
    (fun (path, key, bv) ->
      if List.mem key enforced_bools then begin
        match (bv, fresh_at path) with
        | _, None -> fail "%s: %s disappeared from the fresh run" name path
        | Json.Bool true, Some (_, _, Json.Bool true) -> ()
        | Json.Bool true, Some (_, _, fv) ->
          fail "%s: %s regressed from true to %s" name path (Json.to_string fv)
        | _, Some _ -> () (* a bar the baseline itself did not meet *)
      end
      else
        match numeric_tolerance key with
        | None -> ()
        | Some tol -> (
          match (as_float bv, fresh_at path) with
          | None, _ -> ()
          | Some _, None -> fail "%s: %s disappeared from the fresh run" name path
          | Some b, Some (_, _, fv) -> (
            match as_float fv with
            | None ->
              fail "%s: %s is no longer numeric (%s)" name path (Json.to_string fv)
            | Some f ->
              let floor = match tol with `Abs a -> b -. a | `Rel r -> b *. (1.0 -. r) in
              if f < floor then
                fail "%s: %s fell from %.3f to %.3f (floor %.3f)" name path b f floor)))
    base_leaves

let () =
  let baseline_dir, fresh_dir =
    match Sys.argv with
    | [| _; b; f |] -> (b, f)
    | _ ->
      prerr_endline "usage: gate.exe BASELINE_DIR FRESH_DIR";
      exit 2
  in
  let baselines =
    Sys.readdir baseline_dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.sort compare
  in
  if baselines = [] then begin
    Printf.eprintf "no BENCH_*.json baselines under %s\n" baseline_dir;
    exit 2
  end;
  List.iter
    (fun name ->
      let fresh_path = Filename.concat fresh_dir name in
      if not (Sys.file_exists fresh_path) then
        fail "%s: fresh run produced no such file" name
      else
        check_file name
          (read_doc (Filename.concat baseline_dir name))
          (read_doc fresh_path))
    baselines;
  match List.rev !failures with
  | [] ->
    Printf.printf "bench gate: %d baseline(s) checked, no regressions\n" (List.length baselines)
  | fs ->
    Printf.eprintf "bench gate: %d regression(s):\n" (List.length fs);
    List.iter (fun f -> Printf.eprintf "  %s\n" f) fs;
    exit 1
