(* Quick executor-throughput probe: per-program interp vs VM timing with
   the compile cost split out.  The full comparison (parity + the 5x bar +
   BENCH_exec.json) lives in the bench harness; this exists to iterate on
   VM performance without re-running every reproduction section.

     dune exec bench/exec_probe.exe            # default seeds
     dune exec bench/exec_probe.exe -- 1 2 3   # corpus seeds *)

module Smith = Dce_smith.Smith
module Core = Dce_core
module I = Dce_interp.Interp
module Exec = Dce_exec.Exec

let hot_src =
  {|
int acc = 1;
int main(void) {
  int i = 0;
  while (i < 300) {
    int j = 0;
    while (j < 500) {
      acc = acc + i * j - acc / 7 + (acc & 31);
      j = j + 1;
    }
    i = i + 1;
  }
  return acc & 255;
}
|}

let () =
  let seeds =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> List.map int_of_string args
    | _ -> [ 4242; 777; 20220228; 31415; 2718 ]
  in
  let programs =
    ("hot-loop", Dce_ir.Lower.program (Dce_minic.Typecheck.check_exn (Dce_minic.Parser.parse_program hot_src)))
    :: List.map
         (fun s ->
           ( Printf.sprintf "seed-%d" s,
             Dce_ir.Lower.program
               (Core.Instrument.program (fst (Smith.generate (Smith.default_config s)))) ))
         seeds
  in
  let reps = 12 in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  Printf.printf "%-14s %9s %11s %11s %11s %7s\n" "program" "steps" "interp-ms" "compile-ms"
    "vm-run-ms" "x(e2e)";
  List.iter
    (fun (name, ir) ->
      let ri = Exec.run ~backend:Exec.Interp ir in
      let rv = Exec.run ~backend:Exec.Vm ir in
      if not (Exec.results_equal ri rv) then Printf.printf "%-14s DIVERGENCE\n" name
      else begin
        let ti = time (fun () -> Exec.run ~backend:Exec.Interp ir) in
        let tc = time (fun () -> Dce_exec.Bc_compile.program ir) in
        let cp = Dce_exec.Bc_compile.program ir in
        let tr = time (fun () -> Dce_exec.Bc_vm.run cp) in
        Printf.printf "%-14s %9d %11.3f %11.3f %11.3f %6.1fx\n" name ri.I.steps (ti *. 1e3)
          (tc *. 1e3) (tr *. 1e3)
          (ti /. (tc +. tr))
      end)
    programs
