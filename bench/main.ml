(* Benchmark and reproduction harness.

   Regenerates every table and figure of "Finding Missed Optimizations
   through the Lens of Dead Code Elimination" (ASPLOS '22) on a freshly
   generated corpus, prints the paper's numbers next to the measured ones,
   and finishes with Bechamel micro-benchmarks (one per table/figure, timing
   the computation that produces it).

   Corpus size: DCE_BENCH_PROGRAMS (default 150).  The paper used 10,000
   Csmith programs; the shapes stabilize far earlier on this corpus. *)

module C = Dce_compiler
module Core = Dce_core
module Ir = Dce_ir.Ir
module Smith = Dce_smith.Smith
module R = Dce_report
module Campaign = Dce_campaign
module Repair = Dce_repair

let corpus_size =
  match Sys.getenv_opt "DCE_BENCH_PROGRAMS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 150)
  | None -> 150

(* worker domains for the campaign engine; results are identical for any
   value (deterministic sharding), so this only changes wall-clock *)
let jobs =
  match Sys.getenv_opt "DCE_BENCH_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)
  | None -> 1

(* When set, the whole run is additionally dumped as one JSON document:
   every section's name, wall time, and rendered text, plus the structured
   reduction metrics.  BENCH_reduce.json is written regardless. *)
let json_path = Sys.getenv_opt "DCE_BENCH_JSON"

(* DCE_BENCH_SECTIONS=exec,table1 runs only the named sections *)
let section_filter =
  match Sys.getenv_opt "DCE_BENCH_SECTIONS" with
  | None | Some "" -> None
  | Some s -> Some (String.split_on_char ',' s |> List.map String.trim)

let section_wanted name =
  match section_filter with None -> true | Some names -> List.mem name names

let section title =
  Printf.printf "\n=== %s ===\n" title

let section_log : (string * float * string) list ref = ref []

(* Run one section, timing it; with DCE_BENCH_JSON set, tee its stdout
   through a temp file so the dump carries the rendered text verbatim. *)
let run_section name f =
  if not (section_wanted name) then ()
  else
  let t0 = Unix.gettimeofday () in
  let text =
    match json_path with
    | None ->
      f ();
      ""
    | Some _ ->
      flush stdout;
      let tmp = Filename.temp_file "dce_bench" ".txt" in
      let saved = Unix.dup Unix.stdout in
      let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
      Unix.dup2 fd Unix.stdout;
      Unix.close fd;
      Fun.protect
        ~finally:(fun () ->
          flush stdout;
          Unix.dup2 saved Unix.stdout;
          Unix.close saved)
        f;
      let ic = open_in_bin tmp in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Sys.remove tmp;
      print_string text;
      text
  in
  section_log := (name, Unix.gettimeofday () -. t0, text) :: !section_log

(* ------------------------------------------------------------------ *)
(* corpus and analysis (shared by all tables)                          *)
(* ------------------------------------------------------------------ *)

let campaign = lazy (Campaign.Corpus.run ~jobs ~seed:20220228 ~count:corpus_size ())

let analyses = lazy (List.map snd (Campaign.Corpus.outcomes (Lazy.force campaign)))

let stats = lazy (Campaign.Corpus.stats (Lazy.force campaign))

let instrumented_programs = lazy (Campaign.Corpus.instrumented_programs (Lazy.force campaign))

(* ------------------------------------------------------------------ *)
(* §4.1 prevalence + Tables 1/2                                        *)
(* ------------------------------------------------------------------ *)

let print_prevalence () =
  section "Dead-block prevalence (paper §4.1)";
  let st = Lazy.force stats in
  print_endline (R.Stats.prevalence st);
  print_endline "paper: 3,109,167 blocks, 89.59% dead, 10.41% alive"

let print_table1 () =
  section "Table 1: % dead blocks that are missed";
  print_string (R.Stats.table1 (Lazy.force stats));
  print_endline "paper:  O0 85.21/83.82  O1 8.18/5.20  Os 5.94/4.75  O2 5.66/4.35  O3 5.60/4.31 (gcc/llvm)"

let print_table2 () =
  section "Table 2: % dead blocks that are primary missed";
  print_string (R.Stats.table2 (Lazy.force stats));
  print_endline "paper:  O0 15.30/4.75  O1 1.76/1.47  Os 1.56/1.43  O2 1.53/1.38  O3 1.53/1.37 (gcc/llvm)"

(* ------------------------------------------------------------------ *)
(* pass-manager instrumentation                                        *)
(* ------------------------------------------------------------------ *)

let print_passmgr () =
  section "Pass manager: analysis-cache hit rate and per-pass attribution";
  (* force the corpus compiles so the counters cover them all *)
  let st = Lazy.force stats in
  let c = C.Passmgr.counters () in
  Printf.printf "Meminfo.analyze   %7d computed, %7d served from cache\n"
    c.C.Passmgr.meminfo_misses c.C.Passmgr.meminfo_hits;
  Printf.printf "predecessor maps  %7d computed, %7d served from cache\n" c.C.Passmgr.cfg_misses
    c.C.Passmgr.cfg_hits;
  Printf.printf "dominator trees   %7d computed, %7d served from cache\n" c.C.Passmgr.dom_misses
    c.C.Passmgr.dom_hits;
  Printf.printf "overall cache hit rate: %.1f%%\n" (100.0 *. C.Passmgr.hit_rate c);
  print_endline "Markers eliminated per stage at -O3 (stage-trace attribution):";
  print_string (R.Stats.attribution_table st)

let print_campaign_metrics () =
  section
    (Printf.sprintf "Campaign engine: %d worker domain(s), per-stage wall-time percentiles" jobs);
  let c = Lazy.force campaign in
  print_string (Campaign.Metrics.to_string c.Campaign.Corpus.c_metrics);
  if c.Campaign.Corpus.c_quarantine <> [] then begin
    Printf.printf "%d case(s) quarantined:\n" (List.length c.Campaign.Corpus.c_quarantine);
    print_string (Campaign.Corpus.quarantine_to_string c)
  end

(* ------------------------------------------------------------------ *)
(* §4.2 differentials                                                  *)
(* ------------------------------------------------------------------ *)

let print_differentials () =
  section "Cross-compiler and cross-level differentials (paper §4.2)";
  print_string (R.Stats.differential_summary (Lazy.force stats));
  print_endline
    "paper: GCC misses 39,723 (4,749 primary) that LLVM catches; LLVM misses 3,781 (396 primary);";
  print_endline
    "       level regressions: GCC 308 markers (24 primary), LLVM 456 (54 primary)"

(* ------------------------------------------------------------------ *)
(* Tables 3/4: bisected regression components (bisection campaign)     *)
(* ------------------------------------------------------------------ *)

(* One bisection campaign powers both the tables and the probe-cache bench:
   the caches are cleared first so the surviving-compile miss delta counts
   exactly the pipelines this campaign executed — with the probe cache on,
   that is far fewer than the probe count (one compiled version answers for
   every sibling marker of a program). *)
let bisect_campaign_run = lazy begin
  C.Compiler.clear_caches ();
  let before = (C.Compiler.cache_stats ()).C.Compiler.cs_surviving.C.Compile_cache.misses in
  let b = Campaign.Bisect_campaign.run ~jobs (Lazy.force campaign) in
  let after = (C.Compiler.cache_stats ()).C.Compiler.cs_surviving.C.Compile_cache.misses in
  (b, after - before)
end

let print_tables34 () =
  section "Tables 3/4: offending commits of bisected regressions, by component";
  let b, _ = Lazy.force bisect_campaign_run in
  print_string (Campaign.Bisect_campaign.summary b);
  print_string (Campaign.Bisect_campaign.component_tables b);
  print_endline "paper Table 3: 38 regressions, 21 commits, 11 components, 23 files (LLVM)";
  print_endline "paper Table 4: 44 regressions, 23 commits, 16 components, 34 files (GCC)";
  if b.Campaign.Bisect_campaign.b_quarantine <> [] then begin
    Printf.printf "%d case(s) quarantined:\n"
      (List.length b.Campaign.Bisect_campaign.b_quarantine);
    print_string (Campaign.Bisect_campaign.quarantine_to_string b)
  end

let bisect_bench_json : Campaign.Json.t ref = ref Campaign.Json.Null

let print_bisect_bench () =
  section
    (Printf.sprintf "Bisection campaign: probe cache effect, %d worker domain(s)" jobs);
  let b, pipelines = Lazy.force bisect_campaign_run in
  let probes = b.Campaign.Bisect_campaign.b_probes in
  let ratio = if pipelines = 0 then 0.0 else float_of_int probes /. float_of_int pipelines in
  Printf.printf
    "%d compile-and-check probes answered by %d pipeline executions (%.1fx fewer; uncached, every \
     probe would compile)\n"
    probes pipelines ratio;
  let component_rows =
    List.concat_map
      (fun (compiler, commits) ->
        List.map
          (fun (r : Dce_bisect.Bisect.component_row) ->
            Campaign.Json.Obj
              [
                ("compiler", Campaign.Json.String compiler);
                ("component", Campaign.Json.String r.Dce_bisect.Bisect.component);
                ("commits", Campaign.Json.Int r.Dce_bisect.Bisect.commits);
                ("files", Campaign.Json.Int r.Dce_bisect.Bisect.files);
              ])
          (Dce_bisect.Bisect.component_table commits))
      (Campaign.Bisect_campaign.commits_by_compiler b)
  in
  let doc =
    Campaign.Json.Obj
      [
        ("cases", Campaign.Json.Int (Array.length b.Campaign.Bisect_campaign.b_corpus_cases));
        ("pairs", Campaign.Json.Int b.Campaign.Bisect_campaign.b_pairs);
        ( "regressions",
          Campaign.Json.Int (List.length (Campaign.Bisect_campaign.regressions b)) );
        ("probes", Campaign.Json.Int probes);
        ("pipelines_cached", Campaign.Json.Int pipelines);
        ("speedup_vs_uncached", Campaign.Json.Float ratio);
        ("components", Campaign.Json.List component_rows);
      ]
  in
  bisect_bench_json := doc;
  let oc = open_out "BENCH_bisect.json" in
  output_string oc (Campaign.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  print_endline "wrote BENCH_bisect.json"

(* ------------------------------------------------------------------ *)
(* Supervision: guard overhead and chaos containment                   *)
(* ------------------------------------------------------------------ *)

(* The guard's promise is "pay nothing when unarmed, almost nothing when
   armed": the interpreter polls every 256 steps, so the bench runs one
   interpreter-heavy program three ways and compares wall time.  The chaos
   half re-runs a small campaign under a five-fault plan and shows the
   containment cost: faulted cases quarantined or recovered, total wall
   within a small factor of the fault-free run. *)
let print_supervision_bench () =
  section "Supervision: guard overhead and chaos containment";
  let module Guard = Dce_support.Guard in
  let ir =
    Dce_ir.Lower.program
      (Core.Instrument.program (fst (Smith.generate (Smith.default_config 4242))))
  in
  let reps = 20 in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let bare = time (fun () -> Dce_interp.Interp.run ir) in
  let armed =
    time (fun () ->
        Guard.with_guard
          (Guard.create ~deadline:3600.0 ~steps:max_int ())
          (fun () -> Dce_interp.Interp.run ir))
  in
  let overhead = if bare > 0. then (armed -. bare) /. bare *. 100. else 0. in
  Printf.printf
    "interpreter, %d reps: unguarded %.3fms/run, deadline+step guard %.3fms/run (%+.1f%% \
     overhead)\n"
    reps (bare *. 1e3) (armed *. 1e3) overhead;
  let chaos =
    match
      Campaign.Chaos.of_string
        "crash@3,hang@7:ground-truth,transient@11:differential,slow@13:instrument,corrupt@17"
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  let cases = 30 in
  let t0 = Unix.gettimeofday () in
  let plain = Campaign.Corpus.run ~jobs ~seed:4242 ~count:cases () in
  let plain_wall = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let chaotic =
    Campaign.Corpus.run ~jobs ~seed:4242 ~count:cases ~chaos ~step_budget:2_000_000 ~retries:2 ()
  in
  let chaos_wall = Unix.gettimeofday () -. t0 in
  let m = chaotic.Campaign.Corpus.c_metrics in
  Printf.printf
    "chaos campaign (%d cases, 5-fault plan): %.2fs vs %.2fs fault-free; %d quarantined (%d \
     crash / %d timeout / %d invalid IR), %d recovered by retry, %d faults fired\n"
    cases chaos_wall plain_wall
    (List.length chaotic.Campaign.Corpus.c_quarantine)
    m.Campaign.Metrics.crashed m.Campaign.Metrics.timeouts m.Campaign.Metrics.ir_invalid
    m.Campaign.Metrics.recovered m.Campaign.Metrics.chaos_fired;
  ignore plain;
  let doc =
    Campaign.Json.Obj
      [
        ("interp_unguarded_ms", Campaign.Json.Float (bare *. 1e3));
        ("interp_guarded_ms", Campaign.Json.Float (armed *. 1e3));
        ("guard_overhead_pct", Campaign.Json.Float overhead);
        ("chaos_cases", Campaign.Json.Int cases);
        ("chaos_wall_s", Campaign.Json.Float chaos_wall);
        ("fault_free_wall_s", Campaign.Json.Float plain_wall);
        ("quarantined", Campaign.Json.Int (List.length chaotic.Campaign.Corpus.c_quarantine));
        ("crashed", Campaign.Json.Int m.Campaign.Metrics.crashed);
        ("timeouts", Campaign.Json.Int m.Campaign.Metrics.timeouts);
        ("ir_invalid", Campaign.Json.Int m.Campaign.Metrics.ir_invalid);
        ("retries", Campaign.Json.Int m.Campaign.Metrics.retries);
        ("recovered", Campaign.Json.Int m.Campaign.Metrics.recovered);
        ("chaos_fired", Campaign.Json.Int m.Campaign.Metrics.chaos_fired);
      ]
  in
  let oc = open_out "BENCH_supervision.json" in
  output_string oc (Campaign.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  print_endline "wrote BENCH_supervision.json"

(* ------------------------------------------------------------------ *)
(* Executor: bytecode VM vs reference interpreter                      *)
(* ------------------------------------------------------------------ *)

module Exec = Dce_exec.Exec

(* The VM's contract is "identical results, a multiple of the throughput".
   Parity is asserted before any timing — a fast wrong executor is
   worthless — then executed-steps/sec is measured on a loop-heavy program
   (≈1.2M steps, the ground-truth fuel regime) plus a slice of generated
   corpus programs for realism.  Both end-to-end throughput (compile +
   run, what Exec.run costs a campaign) and run-only throughput (the
   bytecode reused) are reported; the ≥5x bar applies end-to-end. *)
let print_exec_bench () =
  section "Executor: bytecode VM vs reference interpreter";
  let hot =
    Dce_minic.Typecheck.check_exn
      (Dce_minic.Parser.parse_program
         {|
int acc = 1;
int main(void) {
  int i = 0;
  while (i < 300) {
    int j = 0;
    while (j < 500) {
      acc = acc + i * j - acc / 7 + (acc & 31);
      j = j + 1;
    }
    i = i + 1;
  }
  return acc & 255;
}
|})
  in
  let corpus_irs =
    List.map
      (fun s ->
        Dce_ir.Lower.program
          (Core.Instrument.program (fst (Smith.generate (Smith.default_config s)))))
      [ 4242; 777; 20220228; 31415; 2718 ]
  in
  let irs = Dce_ir.Lower.program hot :: corpus_irs in
  let parity_ok =
    List.for_all
      (fun ir ->
        Exec.results_equal (Exec.run ~backend:Exec.Interp ir) (Exec.run ~backend:Exec.Vm ir))
      irs
  in
  Printf.printf "parity on %d programs: %s\n" (List.length irs)
    (if parity_ok then "identical results under both backends" else "DIVERGENCE");
  let total_steps =
    List.fold_left (fun acc ir -> acc + (Exec.run ~backend:Exec.Vm ir).Dce_interp.Interp.steps) 0 irs
  in
  let reps = 12 in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      List.iter f irs
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let interp_s = time (fun ir -> ignore (Exec.run ~backend:Exec.Interp ir)) in
  let vm_s = time (fun ir -> ignore (Exec.run ~backend:Exec.Vm ir)) in
  let compiled = List.map Dce_exec.Bc_compile.program irs in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    List.iter (fun cp -> ignore (Dce_exec.Bc_vm.run cp)) compiled
  done;
  let vm_run_s = (Unix.gettimeofday () -. t0) /. float_of_int reps in
  let sps s = float_of_int total_steps /. s in
  let speedup = sps vm_s /. sps interp_s in
  Printf.printf "workload: %d programs, %d executed steps per pass, %d passes\n"
    (List.length irs) total_steps reps;
  Printf.printf "interp            %10.0f steps/sec  (%.2f ms/pass)\n" (sps interp_s)
    (interp_s *. 1e3);
  Printf.printf "vm (compile+run)  %10.0f steps/sec  (%.2f ms/pass)  %.1fx\n" (sps vm_s)
    (vm_s *. 1e3) speedup;
  Printf.printf "vm (run only)     %10.0f steps/sec  (%.2f ms/pass)  %.1fx\n" (sps vm_run_s)
    (vm_run_s *. 1e3)
    (sps vm_run_s /. sps interp_s);
  if speedup < 5.0 then
    Printf.printf "WARNING: VM end-to-end speedup %.1fx is below the 5x bar\n" speedup;
  let doc =
    Campaign.Json.Obj
      [
        ("programs", Campaign.Json.Int (List.length irs));
        ("reps", Campaign.Json.Int reps);
        ("executed_steps_per_pass", Campaign.Json.Int total_steps);
        ("parity_ok", Campaign.Json.Bool parity_ok);
        ("interp_steps_per_sec", Campaign.Json.Float (sps interp_s));
        ("vm_steps_per_sec", Campaign.Json.Float (sps vm_s));
        ("vm_run_only_steps_per_sec", Campaign.Json.Float (sps vm_run_s));
        ("speedup", Campaign.Json.Float speedup);
        ("meets_5x_bar", Campaign.Json.Bool (speedup >= 5.0));
      ]
  in
  let oc = open_out "BENCH_exec.json" in
  output_string oc (Campaign.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  print_endline "wrote BENCH_exec.json"

(* ------------------------------------------------------------------ *)
(* Table 5: triage                                                     *)
(* ------------------------------------------------------------------ *)

let reports = lazy begin
  let st = Lazy.force stats in
  let programs = Lazy.force instrumented_programs in
  R.Triage.triage ~programs (st.R.Stats.findings @ st.R.Stats.regression_findings)
end

let print_table5 () =
  section "Table 5: missed optimizations reported / confirmed / duplicate / fixed";
  let reports = Lazy.force reports in
  print_string (R.Triage.table5 reports);
  print_endline "paper:  Reported 53/31  Confirmed 43/19  Duplicate 5/0  Fixed 12/11 (gcc/llvm)";
  print_endline "report clusters (deduplicated by diagnosis signature):";
  List.iter
    (fun (r : R.Triage.report) ->
      Printf.printf "  %-9s %-24s %-10s x%d (%s)\n" r.R.Triage.r_compiler r.R.Triage.r_signature
        (R.Triage.status_name r.R.Triage.r_status)
        r.R.Triage.r_occurrences
        (Option.value ~default:"?" r.R.Triage.r_component))
    reports

(* ------------------------------------------------------------------ *)
(* Figure 1: the four-step pipeline, traced on one program             *)
(* ------------------------------------------------------------------ *)

let figure1_demo () =
  section "Figure 1: approach overview (trace on one program)";
  let src =
    {|
static int a = 0;
int b[2] = {0, 0};
int main(void) {
  char *d = &a;
  char *e = &b[1];
  if (d == e) { use(1); }
  if (a) { b[0] = 1; b[1] = 1; }
  a = 0;
  return 0;
}
|}
  in
  let prog = Dce_minic.Typecheck.check_exn (Dce_minic.Parser.parse_program src) in
  let instr = Core.Instrument.program prog in
  Printf.printf "step 1: instrumented %d markers\n" (Core.Instrument.marker_count instr);
  (match Core.Ground_truth.compute instr with
   | Core.Ground_truth.Valid truth ->
     Printf.printf "step 2: executed; alive markers {%s}, dead {%s}\n"
       (String.concat "," (List.map string_of_int (Ir.Iset.elements truth.Core.Ground_truth.alive)))
       (String.concat "," (List.map string_of_int (Ir.Iset.elements truth.Core.Ground_truth.dead)));
     let surv name compiler =
       let cfg = { Core.Differential.compiler; level = C.Level.O3; version = None } in
       let s = Core.Differential.surviving cfg instr in
       Printf.printf "step 3: %s -O3 keeps {%s}\n" name
         (String.concat "," (List.map string_of_int (Ir.Iset.elements s)));
       s
     in
     let sg = surv "gcc-sim " C.Gcc_sim.compiler in
     let sl = surv "llvm-sim" C.Llvm_sim.compiler in
     let graph =
       Core.Primary.build ~live_blocks:truth.Core.Ground_truth.live_blocks
         (Dce_ir.Lower.program instr)
     in
     let prim s =
       Core.Primary.primary_missed graph ~alive:truth.Core.Ground_truth.alive
         ~missed:(Ir.Iset.inter s truth.Core.Ground_truth.dead)
     in
     Printf.printf "step 4: primary missed  gcc {%s}  llvm {%s}\n"
       (String.concat "," (List.map string_of_int (Ir.Iset.elements (prim sg))))
       (String.concat "," (List.map string_of_int (Ir.Iset.elements (prim sl))))
   | Core.Ground_truth.Rejected r -> Printf.printf "ground truth rejected: %s\n" r)

(* ------------------------------------------------------------------ *)
(* Figure 2: the nested-dead-code marker graph (paper Listing 5)       *)
(* ------------------------------------------------------------------ *)

let figure2_demo () =
  section "Figure 2: CFG of the nested dead-code example (paper Listing 5)";
  let src =
    {|
static int x = 0;
int main(void) {
  int expr2 = ext(1) & 1;
  if (x) {
    use(1);
    if (expr2) { use(2); }
  }
  use(3);
  return 0;
}
|}
  in
  let prog = Dce_minic.Typecheck.check_exn (Dce_minic.Parser.parse_program src) in
  let instr = Core.Instrument.program prog in
  (match Core.Ground_truth.compute instr with
   | Core.Ground_truth.Valid truth ->
     let graph =
       Core.Primary.build ~live_blocks:truth.Core.Ground_truth.live_blocks
         (Dce_ir.Lower.program instr)
     in
     Ir.Iset.iter
       (fun m ->
         let preds = Core.Primary.predecessors graph m in
         Printf.printf "  marker %d: %s, preds {%s}%s\n" m
           (if Ir.Iset.mem m truth.Core.Ground_truth.alive then "live" else "dead")
           (String.concat "," (List.map string_of_int (Ir.Iset.elements preds)))
           (if Core.Primary.has_root_context graph m then " +root" else ""))
       (Core.Primary.markers graph);
     (* a compiler that misses everything: only marker(s) whose preds are all
        live/detected are primary *)
     let missed = truth.Core.Ground_truth.dead in
     let prim =
       Core.Primary.primary_missed graph ~alive:truth.Core.Ground_truth.alive ~missed
     in
     Printf.printf "  if all dead markers are missed, primary = {%s} (paper: only B2)\n"
       (String.concat "," (List.map string_of_int (Ir.Iset.elements prim)))
   | Core.Ground_truth.Rejected r -> Printf.printf "ground truth rejected: %s\n" r)

(* ------------------------------------------------------------------ *)
(* Extension: value-check instrumentation (paper §4.4)                 *)
(* ------------------------------------------------------------------ *)

let print_value_checks () =
  section "Extension (§4.4): value checks after loops — % checks missed";
  let v =
    Campaign.Corpus.run_value ~jobs ~seed:20220228 ~count:(min 60 corpus_size) ()
  in
  print_string (Campaign.Corpus.value_table v);
  print_endline
    "(the paper proposes this mode as future work; checks probe scalar-evolution reasoning,";
  print_endline
    " so elimination tracks the unroll/promotion capabilities appearing at -O2)"

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md §4)                                            *)
(* ------------------------------------------------------------------ *)

let print_ablations () =
  section "Ablation: interprocedural vs intraprocedural primary analysis";
  let inter = ref 0 and intra = ref 0 and missed_total = ref 0 in
  List.iter
    (fun (outcome, _) ->
      match outcome with
      | Core.Analysis.Analyzed a ->
        let truth = a.Core.Analysis.truth in
        (match Core.Analysis.find_config a "gcc-sim" C.Level.O3 with
         | Some pc ->
           let ir = Dce_ir.Lower.program a.Core.Analysis.instrumented in
           let g_intra = Core.Primary.build ~interprocedural:false ir in
           let p_intra =
             Core.Primary.primary_missed g_intra ~alive:truth.Core.Ground_truth.alive
               ~missed:pc.Core.Analysis.missed
           in
           inter := !inter + Ir.Iset.cardinal pc.Core.Analysis.primary_missed;
           intra := !intra + Ir.Iset.cardinal p_intra;
           missed_total := !missed_total + Ir.Iset.cardinal pc.Core.Analysis.missed
         | None -> ())
      | Core.Analysis.Rejected _ -> ())
    (Lazy.force analyses);
  Printf.printf
    "gcc-sim -O3: %d missed; %d primary (interprocedural) vs %d primary (intraprocedural)\n"
    !missed_total !inter !intra;
  print_endline "(intraprocedural over-reports primaries: callee-entry markers lose their dead callers)";

  section "Ablation: edge-aware memory propagation (the modeled LLVM O3 regression)";
  let count_missed feats_edit =
    let total = ref 0 in
    List.iter
      (fun (outcome, _) ->
        match outcome with
        | Core.Analysis.Analyzed a ->
          let instr = a.Core.Analysis.instrumented in
          let feats = feats_edit (C.Compiler.features C.Llvm_sim.compiler C.Level.O2) in
          let ir = Dce_ir.Lower.program instr in
          let opt = C.Pipeline.run feats ir in
          let asm = Dce_backend.Codegen.program opt in
          let surv = Dce_backend.Asm.surviving_markers asm in
          let dead = a.Core.Analysis.truth.Core.Ground_truth.dead in
          total := !total + List.length (List.filter (fun m -> Ir.Iset.mem m dead) surv)
        | Core.Analysis.Rejected _ -> ())
      (Dce_support.Listx.take 40 (Lazy.force analyses));
    !total
  in
  let with_edge = count_missed (fun f -> f) in
  let without_edge = count_missed (fun f -> { f with C.Features.memcp_edge_aware = false }) in
  Printf.printf "llvm-sim -O2 on 40 programs: %d missed with edge-aware memcp, %d without\n"
    with_edge without_edge

(* ------------------------------------------------------------------ *)
(* Reduction engine benchmark (§4.3 / lib/reduce)                      *)
(* ------------------------------------------------------------------ *)

module Reduce = Dce_reduce

(* (instrumented program, marker) pairs where gcc -O3 keeps a dead marker
   that llvm -O3 eliminates — the paper's reduction predicate, drawn from
   the differentials the campaign already computed *)
let reduction_corpus = lazy begin
  List.filter_map
    (fun (outcome, _) ->
      match outcome with
      | Core.Analysis.Analyzed a -> (
        match
          ( Core.Analysis.find_config a "gcc-sim" C.Level.O3,
            Core.Analysis.find_config a "llvm-sim" C.Level.O3 )
        with
        | Some g, Some l -> (
          let cand =
            Ir.Iset.filter
              (fun m -> not (Ir.Iset.mem m l.Core.Analysis.surviving))
              g.Core.Analysis.missed
          in
          match Ir.Iset.min_elt_opt cand with
          | Some m -> Some (a.Core.Analysis.instrumented, m)
          | None -> None)
        | _ -> None)
      | Core.Analysis.Rejected _ -> None)
    (Lazy.force analyses)
end

let reduce_bench_json : Campaign.Json.t ref = ref Campaign.Json.Null

let print_reduction () =
  section
    (Printf.sprintf "Reduction engine: staged + memoized predicate, %d worker domain(s)" jobs);
  let cases = Dce_support.Listx.take 8 (Lazy.force reduction_corpus) in
  if cases = [] then print_endline "no gcc-keeps/llvm-kills differential in this corpus; skipping"
  else begin
    C.Compiler.clear_caches ();
    let mk compiler = { Core.Differential.compiler; level = C.Level.O3; version = None } in
    let naive = ref 0 and staged = ref 0 and run_ = ref 0 and charged = ref 0 in
    let case_rows =
      List.mapi
        (fun i (prog, marker) ->
          let predicate =
            Reduce.Predicate.marker_diff ~compile_cache:true
              ~keep_missed_by:(mk C.Gcc_sim.compiler) ~eliminated_by:(mk C.Llvm_sim.compiler)
              ~marker ()
          in
          let r = Reduce.Engine.reduce ~max_tests:250 ~jobs ~predicate prog in
          let s = r.Reduce.Engine.stats in
          naive := !naive + s.Reduce.Engine.s_pipelines_naive;
          staged := !staged + s.Reduce.Engine.s_pipelines_staged;
          run_ := !run_ + s.Reduce.Engine.s_pipelines_run;
          charged := !charged + s.Reduce.Engine.s_charged;
          Printf.printf
            "  case %d marker %-3d  size %4d -> %-4d  %d rounds, %d tests, pipelines %d (naive %d)\n"
            i marker r.Reduce.Engine.initial_size r.Reduce.Engine.final_size
            r.Reduce.Engine.rounds r.Reduce.Engine.tests_run s.Reduce.Engine.s_pipelines_run
            s.Reduce.Engine.s_pipelines_naive;
          Campaign.Json.Obj
            [
              ("case", Campaign.Json.Int i);
              ("marker", Campaign.Json.Int marker);
              ("initial_size", Campaign.Json.Int r.Reduce.Engine.initial_size);
              ("final_size", Campaign.Json.Int r.Reduce.Engine.final_size);
              ("rounds", Campaign.Json.Int r.Reduce.Engine.rounds);
              ("tests_run", Campaign.Json.Int r.Reduce.Engine.tests_run);
              ("stats", Reduce.Engine.stats_json s);
            ])
        cases
    in
    let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
    Printf.printf
      "pipeline executions over %d cases (%d charged tests): %d actual vs %d naive (%.1fx fewer) \
       and %d staged-uncached (%.1fx)\n"
      (List.length cases) !charged !run_ !naive
      (ratio !naive !run_)
      !staged
      (ratio !staged !run_);
    let cs = C.Compiler.cache_stats () in
    Printf.printf "compile cache: surviving %d hits / %d misses; lower-fn %d hits / %d misses\n"
      cs.C.Compiler.cs_surviving.C.Compile_cache.hits
      cs.C.Compiler.cs_surviving.C.Compile_cache.misses
      cs.C.Compiler.cs_lower_fn.C.Compile_cache.hits
      cs.C.Compiler.cs_lower_fn.C.Compile_cache.misses;
    let doc =
      Campaign.Json.Obj
        [
          ("cases", Campaign.Json.List case_rows);
          ( "aggregate",
            Campaign.Json.Obj
              [
                ("charged_tests", Campaign.Json.Int !charged);
                ("pipelines_naive", Campaign.Json.Int !naive);
                ("pipelines_staged_uncached", Campaign.Json.Int !staged);
                ("pipelines_run", Campaign.Json.Int !run_);
                ("speedup_vs_naive", Campaign.Json.Float (ratio !naive !run_));
              ] );
        ]
    in
    reduce_bench_json := doc;
    let oc = open_out "BENCH_reduce.json" in
    output_string oc (Campaign.Json.to_string doc);
    output_string oc "\n";
    close_out oc;
    print_endline "wrote BENCH_reduce.json"
  end

(* ------------------------------------------------------------------ *)
(* Oracles: size-hunt and level-hunt throughput + sibling reuse         *)
(* ------------------------------------------------------------------ *)

(* The observables memo stores markers and size together, so every analysis
   that looks at a (compiler, level, program) the corpus has already
   compiled pays nothing.  This section runs four consumers over one
   corpus — the size campaign, the inversion campaign, and the two classic
   marker analyses (per-level missed counts, cross-level regressions)
   re-run as standalone passes — and reports queries-per-compile.  Only the
   inversion campaign's level set actually compiles (8 keys per valid
   program); the other 24 queries per program are cache hits, so sibling
   reuse lands at 4 queries per pipeline execution. *)
let print_oracles_bench () =
  section (Printf.sprintf "Oracles: size-hunt and level-hunt, %d worker domain(s)" jobs);
  let module OC = Campaign.Oracle_campaign in
  C.Compiler.clear_caches ();
  let snap () = (C.Compiler.cache_stats ()).C.Compiler.cs_surviving in
  let c0 = snap () in
  let t0 = Unix.gettimeofday () in
  let s = OC.run_size ~jobs ~seed:20220228 ~count:corpus_size () in
  let t_size = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let inv = OC.run_inversion ~jobs ~seed:20220228 ~count:corpus_size () in
  let t_inv = Unix.gettimeofday () -. t0 in
  let sf = OC.size_findings s in
  let cross, intra =
    List.partition (function _, Core.Differential.Size_cross _ -> true | _ -> false) sf
  in
  let invf = OC.inversion_findings inv in
  Printf.printf "size-hunt   %3d programs in %5.2fs (%6.1f programs/sec): %d findings (%d cross, %d intra)\n"
    corpus_size t_size
    (float_of_int corpus_size /. t_size)
    (List.length sf) (List.length cross) (List.length intra);
  Printf.printf "level-hunt  %3d programs in %5.2fs (%6.1f programs/sec): %d inversions\n"
    corpus_size t_inv
    (float_of_int corpus_size /. t_inv)
    (List.length invf);
  (* consumers three and four: the marker oracle's per-level missed counts
     and the paper's cross-level regressions, as independent passes over the
     same corpus — every surviving-set query below is a cache hit *)
  let valid =
    Array.to_list inv.OC.i_cases
    |> List.filter_map (function
         | Campaign.Engine.Done ic when ic.OC.ic_rejected = None ->
           Some
             ( Core.Instrument.program (fst (Smith.generate (Smith.default_config ic.OC.ic_seed))),
               ic.OC.ic_dead )
         | _ -> None)
  in
  let compilers = [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ] in
  let missed_total = ref 0 in
  List.iter
    (fun (prog, dead) ->
      List.iter
        (fun compiler ->
          List.iter
            (fun level ->
              let surv = C.Compiler.surviving_markers_cached compiler level prog in
              missed_total :=
                !missed_total + List.length (List.filter (fun m -> Ir.Iset.mem m dead) surv))
            OC.inversion_levels)
        compilers)
    valid;
  let adjacent = [ (C.Level.O1, C.Level.Os); (C.Level.Os, C.Level.O2); (C.Level.O2, C.Level.O3) ] in
  let regressions = ref 0 in
  List.iter
    (fun (prog, dead) ->
      List.iter
        (fun compiler ->
          List.iter
            (fun (lo, hi) ->
              let at l = C.Compiler.surviving_markers_cached compiler l prog in
              let s_lo = at lo and s_hi = at hi in
              Ir.Iset.iter
                (fun m -> if (not (List.mem m s_lo)) && List.mem m s_hi then incr regressions)
                dead)
            adjacent)
        compilers)
    valid;
  Printf.printf
    "marker sweeps over the same corpus: %d missed-marker observations, %d adjacent-level \
     regressions (no new compiles)\n"
    !missed_total !regressions;
  let c1 = snap () in
  let probes =
    c1.C.Compile_cache.hits + c1.C.Compile_cache.misses - c0.C.Compile_cache.hits
    - c0.C.Compile_cache.misses
  in
  let pipelines = c1.C.Compile_cache.misses - c0.C.Compile_cache.misses in
  let hits = c1.C.Compile_cache.hits - c0.C.Compile_cache.hits in
  let reuse = if pipelines = 0 then 0.0 else float_of_int probes /. float_of_int pipelines in
  let hit_rate = if probes = 0 then 0.0 else float_of_int hits /. float_of_int probes in
  Printf.printf
    "compile cache: %d surviving-set queries answered by %d pipeline executions — %.1f queries \
     per compile, %.1f%% hit rate\n"
    probes pipelines reuse (100.0 *. hit_rate);
  if reuse < 3.0 then
    Printf.printf "WARNING: sibling reuse %.1fx is below the 3x bar\n" reuse;
  let doc =
    Campaign.Json.Obj
      [
        ("programs", Campaign.Json.Int corpus_size);
        ("valid", Campaign.Json.Int (List.length valid));
        ("jobs", Campaign.Json.Int jobs);
        ( "size",
          Campaign.Json.Obj
            [
              ("findings", Campaign.Json.Int (List.length sf));
              ("cross", Campaign.Json.Int (List.length cross));
              ("intra", Campaign.Json.Int (List.length intra));
              ("programs_per_sec", Campaign.Json.Float (float_of_int corpus_size /. t_size));
            ] );
        ( "inversion",
          Campaign.Json.Obj
            [
              ("findings", Campaign.Json.Int (List.length invf));
              ("programs_per_sec", Campaign.Json.Float (float_of_int corpus_size /. t_inv));
            ] );
        ( "cache",
          Campaign.Json.Obj
            [
              ("probes", Campaign.Json.Int probes);
              ("pipelines", Campaign.Json.Int pipelines);
              ("hits", Campaign.Json.Int hits);
              ("hit_rate", Campaign.Json.Float hit_rate);
              ("sibling_reuse", Campaign.Json.Float reuse);
              ("meets_3x_bar", Campaign.Json.Bool (reuse >= 3.0));
              ("meets_hit_rate_floor", Campaign.Json.Bool (hit_rate >= 0.6));
            ] );
      ]
  in
  let oc = open_out "BENCH_oracles.json" in
  output_string oc (Campaign.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  print_endline "wrote BENCH_oracles.json"

(* ------------------------------------------------------------------ *)
(* campaign fabric: multi-process scaling and work stealing            *)
(* ------------------------------------------------------------------ *)

(* The scaling sections use a calibrated sleep-based workload: each case
   blocks for a fixed wall interval, so N worker processes overlap N sleeps
   even on a single-core machine (this container has one).  That measures
   exactly what the fabric adds — process-level overlap, chunk dispatch
   overhead, and work-stealing balance — without conflating it with CPU
   contention.  The warm-worker section then runs the real campaign. *)
let print_fabric_bench () =
  section "Campaign fabric: worker processes, work stealing, warm caches";
  if Campaign.Engine.domains_ever_spawned () then
    (* DCE_BENCH_JOBS > 1 makes earlier sections spawn domains, after which
       OCaml forbids the fork the fabric needs; the section (and its JSON
       baseline) is only meaningful at the default jobs=1 anyway *)
    Printf.printf
      "  skipped: earlier sections spawned worker domains (DCE_BENCH_JOBS=%d), and OCaml \
       forbids fork afterwards; rerun with DCE_BENCH_JOBS=1\n"
      jobs
  else begin
  let toy_codec =
    { Campaign.Engine.encode = (fun i -> Campaign.Json.Int i); decode = Campaign.Json.int_exn }
  in
  (* --- near-linear scaling on a uniform corpus ---------------------- *)
  let case_ms = 10.0 in
  let cases = 64 in
  let runner ctx i =
    Campaign.Engine.stage ctx "sleep" (fun () ->
        Unix.sleepf (case_ms /. 1000.0);
        i)
  in
  let timed_run workers =
    let t0 = Unix.gettimeofday () in
    let r = Campaign.Fabric.run ~codec:toy_codec ~workers ~jobs:1 ~count:cases runner in
    (Unix.gettimeofday () -. t0, r)
  in
  let wall_1, r1 = timed_run 1 in
  let wall_2, _ = timed_run 2 in
  let wall_4, r4 = timed_run 4 in
  let speedup_2 = wall_1 /. wall_2 in
  let speedup_4 = wall_1 /. wall_4 in
  let outcomes_identical = r1.Campaign.Engine.outcomes = r4.Campaign.Engine.outcomes in
  Printf.printf
    "uniform corpus (%d cases x %.0fms): workers=1 %.2fs, workers=2 %.2fs (%.2fx), workers=4 \
     %.2fs (%.2fx); outcomes identical: %b\n"
    cases case_ms wall_1 wall_2 speedup_2 wall_4 speedup_4 outcomes_identical;
  if speedup_4 < 3.0 then
    Printf.printf "WARNING: 4-worker speedup %.2fx is below the 3x bar\n" speedup_4;
  (* --- skewed corpus: work stealing vs static sharding -------------- *)
  (* every 4th case is 25x heavier; round-robin static sharding piles all
     of them onto slot 0 while dynamic chunks spread the tail *)
  let skew_cases = 32 in
  let skew_runner ctx i =
    Campaign.Engine.stage ctx "sleep" (fun () ->
        Unix.sleepf (if i mod 4 = 0 then 0.025 else 0.001);
        i)
  in
  let timed_skew scheduling =
    let t0 = Unix.gettimeofday () in
    let r =
      Campaign.Fabric.run ~codec:toy_codec ~scheduling ~chunk:2 ~workers:4 ~jobs:1
        ~count:skew_cases skew_runner
    in
    (Unix.gettimeofday () -. t0, r)
  in
  let wall_static, rs = timed_skew `Static in
  let wall_dynamic, rd = timed_skew `Dynamic in
  let dyn_vs_static = wall_static /. wall_dynamic in
  Printf.printf
    "skewed corpus (%d cases, every 4th 25x heavier): static %.2fs, dynamic %.2fs — %.2fx from \
     work stealing; outcomes identical: %b\n"
    skew_cases wall_static wall_dynamic dyn_vs_static
    (rs.Campaign.Engine.outcomes = rd.Campaign.Engine.outcomes);
  if dyn_vs_static < 1.5 then
    Printf.printf "WARNING: work-stealing gain %.2fx is below the 1.5x bar\n" dyn_vs_static;
  (* --- warm workers on the real campaign ---------------------------- *)
  (* worker processes persist across chunks, so the analysis caches heat up
     for the whole campaign; the farewell message ships the counters back *)
  let warm_count = min corpus_size 24 in
  let solo = Campaign.Corpus.run ~jobs:1 ~seed:20220228 ~count:warm_count () in
  let grid = Campaign.Corpus.run ~workers:2 ~chunk:3 ~jobs:1 ~seed:20220228 ~count:warm_count () in
  let report c =
    let st = Campaign.Corpus.stats c in
    R.Stats.prevalence st ^ R.Stats.table1 st ^ R.Stats.table2 st
    ^ R.Stats.differential_summary st ^ R.Stats.attribution_table st
  in
  let report_identical = report solo = report grid in
  let hit_rate = C.Passmgr.hit_rate grid.Campaign.Corpus.c_metrics.Campaign.Metrics.cache in
  let chunks, cases_per_worker =
    match grid.Campaign.Corpus.c_metrics.Campaign.Metrics.fabric with
    | Some f -> (f.Campaign.Metrics.f_chunks, f.Campaign.Metrics.f_cases_per_worker)
    | None -> (0, [])
  in
  Printf.printf
    "real campaign (%d programs, 2 warm workers): analysis-cache hit rate %.1f%%, %d chunks \
     (cases/worker: %s); report identical to workers=1: %b\n"
    warm_count (100.0 *. hit_rate) chunks
    (String.concat "/" (List.map string_of_int cases_per_worker))
    report_identical;
  let doc =
    Campaign.Json.Obj
      [
        ( "scaling",
          Campaign.Json.Obj
            [
              ("cases", Campaign.Json.Int cases);
              ("case_ms", Campaign.Json.Float case_ms);
              ("wall_1", Campaign.Json.Float wall_1);
              ("wall_2", Campaign.Json.Float wall_2);
              ("wall_4", Campaign.Json.Float wall_4);
              ("speedup_2", Campaign.Json.Float speedup_2);
              ("speedup_4", Campaign.Json.Float speedup_4);
              ("meets_scaling_bar", Campaign.Json.Bool (speedup_4 >= 3.0));
              ("outcomes_identical", Campaign.Json.Bool outcomes_identical);
            ] );
        ( "skew",
          Campaign.Json.Obj
            [
              ("cases", Campaign.Json.Int skew_cases);
              ("wall_static", Campaign.Json.Float wall_static);
              ("wall_dynamic", Campaign.Json.Float wall_dynamic);
              ("dyn_vs_static_speedup", Campaign.Json.Float dyn_vs_static);
              ("meets_1_5x_bar", Campaign.Json.Bool (dyn_vs_static >= 1.5));
            ] );
        ( "warm",
          Campaign.Json.Obj
            [
              ("programs", Campaign.Json.Int warm_count);
              ("workers", Campaign.Json.Int 2);
              ("hit_rate", Campaign.Json.Float hit_rate);
              ("chunks", Campaign.Json.Int chunks);
              ( "cases_per_worker",
                Campaign.Json.List (List.map (fun n -> Campaign.Json.Int n) cases_per_worker) );
              ("report_identical", Campaign.Json.Bool report_identical);
            ] );
      ]
  in
  let oc = open_out "BENCH_fabric.json" in
  output_string oc (Campaign.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  print_endline "wrote BENCH_fabric.json"
  end

(* ------------------------------------------------------------------ *)
(* Repair: closed-loop search + A/B campaign verification              *)
(* ------------------------------------------------------------------ *)

let print_repair_bench () =
  section "Repair: closed-loop search and A/B campaign verification";
  (* the seeded known-fixable regression: gcc-sim -O3 keeps dead marker 34
     of corpus program 1 (the hunt's first primary finding) *)
  let seeds = Smith.corpus_seeds ~seed:20220228 ~count:2 in
  let prog =
    Core.Instrument.program (fst (Smith.generate (Smith.default_config (List.nth seeds 1))))
  in
  let marker = 34 in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  (* every probe is a patched-compiler compile through the content-addressed
     cache, so a re-search is nearly free — that is the probes-per-repair
     economics the repair loop depends on *)
  let search () = Repair.Search.search ~jobs C.Gcc_sim.compiler C.Level.O3 prog ~marker in
  let search_cold, s = timed search in
  let search_warm, _ = timed search in
  let search_cache_speedup = search_cold /. Float.max 1e-9 search_warm in
  Printf.printf
    "search: %d probes (%d singles, %d pairs), %d passing; cold %.3fs, re-search %.3fs (%.1fx \
     from the compile cache)\n"
    s.Repair.Search.so_probes s.Repair.Search.so_singles s.Repair.Search.so_pairs
    (List.length s.Repair.Search.so_passing) search_cold search_warm search_cache_speedup;
  let smoke = min corpus_size 10 in
  let verify_wall, r =
    timed (fun () ->
        Repair.Driver.run ~jobs ~seed:20220228 ~count:smoke C.Gcc_sim.compiler C.Level.O3 prog
          ~marker)
  in
  let found = r.Repair.Driver.rr_accepted <> None in
  let verified_clean =
    match r.Repair.Driver.rr_accepted with
    | Some (_, v) -> not (Campaign.Run_diff.has_regressions v)
    | None -> false
  in
  let campaigns = 1 + List.length r.Repair.Driver.rr_tried in
  let yield =
    float_of_int (List.length (List.filter (fun cv -> cv.Repair.Driver.cv_clean) r.Repair.Driver.rr_tried))
    /. float_of_int (max 1 (List.length r.Repair.Driver.rr_tried))
  in
  (* the patched verification run re-uses every rival cell of the base run
     (same compiler name, same programs), so its cache hit rate is the
     "verification is cheap" claim in one number *)
  let patched_hit_rate =
    match r.Repair.Driver.rr_patched_metrics with
    | Some m -> C.Passmgr.hit_rate m.Campaign.Metrics.cache
    | None -> 0.0
  in
  Printf.printf
    "verify (%d-program smoke corpus): %d campaigns in %.2fs, verified-repair yield %.0f%%, \
     patched-run cache hit rate %.1f%%; repair %s\n"
    smoke campaigns verify_wall (100.0 *. yield) (100.0 *. patched_hit_rate)
    (match r.Repair.Driver.rr_accepted with
     | Some (edits, _) ->
       "accepted: "
       ^ String.concat "+" (List.map (fun e -> e.Core.Diagnose.repair_name) edits)
     | None -> "NOT FOUND");
  let doc =
    Campaign.Json.Obj
      [
        ("marker", Campaign.Json.Int marker);
        ("smoke_corpus", Campaign.Json.Int smoke);
        ( "search",
          Campaign.Json.Obj
            [
              ("probes", Campaign.Json.Int s.Repair.Search.so_probes);
              ("singles", Campaign.Json.Int s.Repair.Search.so_singles);
              ("pairs", Campaign.Json.Int s.Repair.Search.so_pairs);
              ("passing", Campaign.Json.Int (List.length s.Repair.Search.so_passing));
              ("cold_wall_s", Campaign.Json.Float search_cold);
              ("warm_wall_s", Campaign.Json.Float search_warm);
              ("search_cache_speedup", Campaign.Json.Float search_cache_speedup);
            ] );
        ( "verify",
          Campaign.Json.Obj
            [
              ("campaigns", Campaign.Json.Int campaigns);
              ("wall_s", Campaign.Json.Float verify_wall);
              ("probes_per_repair", Campaign.Json.Int r.Repair.Driver.rr_search.Repair.Search.so_probes);
              ("verified_yield", Campaign.Json.Float yield);
              ("hit_rate", Campaign.Json.Float patched_hit_rate);
              ("found_repair", Campaign.Json.Bool found);
              ("verified_clean", Campaign.Json.Bool verified_clean);
            ] );
      ]
  in
  let oc = open_out "BENCH_repair.json" in
  output_string oc (Campaign.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  print_endline "wrote BENCH_repair.json"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per table/figure                      *)
(* ------------------------------------------------------------------ *)

let micro_benchmarks () =
  section "Bechamel micro-benchmarks (time to produce each artifact)";
  let open Bechamel in
  let sample_raw = fst (Smith.generate (Smith.default_config 4242)) in
  let sample = Core.Instrument.program sample_raw in
  let sample_ir = Dce_ir.Lower.program sample in
  let tests =
    [
      Test.make ~name:"prevalence: ground truth by execution"
        (Staged.stage (fun () -> ignore (Core.Ground_truth.compute sample)));
      Test.make ~name:"table1: compile gcc-sim -O3"
        (Staged.stage (fun () ->
             ignore (C.Compiler.surviving_markers C.Gcc_sim.compiler C.Level.O3 sample)));
      Test.make ~name:"table1: compile llvm-sim -O3"
        (Staged.stage (fun () ->
             ignore (C.Compiler.surviving_markers C.Llvm_sim.compiler C.Level.O3 sample)));
      Test.make ~name:"table2: primary marker graph"
        (Staged.stage (fun () -> ignore (Core.Primary.build sample_ir)));
      Test.make ~name:"tables: full 10-config analysis of one program"
        (Staged.stage (fun () -> ignore (Core.Analysis.run sample_raw)));
      Test.make ~name:"tables3/4: one bisection probe (compile at old version)"
        (Staged.stage (fun () ->
             ignore (C.Compiler.surviving_markers C.Gcc_sim.compiler ~version:10 C.Level.O3 sample)));
      Test.make ~name:"table5: one diagnosis (feature flips)"
        (Staged.stage (fun () ->
             ignore (Core.Diagnose.run C.Gcc_sim.compiler C.Level.O3 sample ~marker:0)));
      Test.make ~name:"corpus: generate one program (Smith)"
        (Staged.stage (fun () -> ignore (Smith.generate (Smith.default_config 99))));
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 10) () in
    let raw = Benchmark.all cfg instances test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    Hashtbl.iter
      (fun name ols_result ->
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> Printf.printf "  %-52s %10.1f us/run\n" name (est /. 1000.0)
        | _ -> Printf.printf "  %-52s (no estimate)\n" name)
      results
  in
  List.iter (fun t -> benchmark (Test.make_grouped ~name:"dce" [ t ])) tests

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf "DCE-lens reproduction harness — corpus of %d generated programs\n" corpus_size;
  let t0 = Unix.gettimeofday () in
  C.Passmgr.reset_counters ();
  List.iter
    (fun (name, f) -> run_section name f)
    [
      ("prevalence", print_prevalence);
      ("table1", print_table1);
      ("table2", print_table2);
      ("differentials", print_differentials);
      ("passmgr", print_passmgr);
      ("campaign_metrics", print_campaign_metrics);
      ("tables34", print_tables34);
      ("bisect_bench", print_bisect_bench);
      ("table5", print_table5);
      ("figure1", figure1_demo);
      ("figure2", figure2_demo);
      ("supervision", print_supervision_bench);
      ("exec", print_exec_bench);
      ("value_checks", print_value_checks);
      ("ablations", print_ablations);
      ("reduction", print_reduction);
      ("oracles", print_oracles_bench);
      ("fabric", print_fabric_bench);
      ("repair", print_repair_bench);
    ];
  Printf.printf "\nreproduction sections completed in %.1fs\n" (Unix.gettimeofday () -. t0);
  run_section "micro_benchmarks" micro_benchmarks;
  match json_path with
  | None -> ()
  | Some path ->
    let sections =
      List.rev_map
        (fun (name, seconds, text) ->
          Campaign.Json.Obj
            [
              ("name", Campaign.Json.String name);
              ("seconds", Campaign.Json.Float seconds);
              ("text", Campaign.Json.String text);
            ])
        !section_log
    in
    let doc =
      Campaign.Json.Obj
        [
          ("corpus_size", Campaign.Json.Int corpus_size);
          ("jobs", Campaign.Json.Int jobs);
          ("wall_seconds", Campaign.Json.Float (Unix.gettimeofday () -. t0));
          ("sections", Campaign.Json.List sections);
          ("reduce", !reduce_bench_json);
          ("bisect", !bisect_bench_json);
        ]
    in
    let oc = open_out path in
    output_string oc (Campaign.Json.to_string doc);
    output_string oc "\n";
    close_out oc;
    Printf.printf "wrote %s\n" path
