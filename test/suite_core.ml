(* Tests for the paper's core technique: instrumentation, ground truth,
   differential testing, primary-marker analysis, diagnosis. *)

open Helpers
module C = Dce_compiler
module Core = Dce_core
module Ir = Dce_ir.Ir
module Ast = Dce_minic.Ast

(* ---- instrument ---- *)

let markers_in src =
  Ast.markers_of_program (Core.Instrument.program (parse src))

let test_instrument_positions () =
  (* then/else, loop bodies, switch cases and default are instrumented *)
  let ms = markers_in {|
int g;
int main(void) {
  if (g) { g = 1; } else { g = 2; }
  while (g) { g = g - 1; }
  switch (g) { case 0: { g = 3; } default: { g = 4; } }
  return 0;
}
|} in
  Alcotest.(check (list int)) "five blocks instrumented" [ 0; 1; 2; 3; 4 ] ms

let test_instrument_after_conditional_return () =
  let instr = Core.Instrument.program (parse {|
int g;
int main(void) {
  if (g) { return 1; }
  g = 2;
  return 0;
}
|}) in
  (* one marker heads the then-branch, one follows the conditional return *)
  Alcotest.(check int) "two markers" 2 (Core.Instrument.marker_count instr);
  (* and the continuation marker sits between the if and g = 2 *)
  let fn = Option.get (Ast.find_func instr "main") in
  (match fn.Ast.f_body with
   | Ast.Sif _ :: Ast.Smarker _ :: _ -> ()
   | _ -> Alcotest.fail "expected marker right after the conditional return")

let test_instrument_empty_else_not_instrumented () =
  let ms = markers_in "int g; int main(void) { if (g) { g = 1; } return 0; }" in
  Alcotest.(check (list int)) "only the then branch" [ 0 ] ms

let test_instrument_rejects_instrumented () =
  let instr = Core.Instrument.program (parse "int g; int main(void) { if (g) { g = 1; } return 0; }") in
  Alcotest.(check bool) "raises" true
    (try ignore (Core.Instrument.program instr); false with Invalid_argument _ -> true)

let test_instrument_preserves_behaviour () =
  let src = {|
int g;
int main(void) {
  int i;
  for (i = 0; i < 4; i++) { if (i & 1) { g += i; } }
  use(g);
  return g;
}
|} in
  let prog = parse src in
  let instr = Core.Instrument.program prog in
  let strip r =
    (* markers add events; compare modulo marker events *)
    { r with Dce_interp.Interp.events =
        List.filter (function Dce_interp.Interp.Ev_marker _ -> false | _ -> true)
          r.Dce_interp.Interp.events }
  in
  let r1 = Dce_interp.Interp.run (Dce_ir.Lower.program prog) in
  let r2 = strip (Dce_interp.Interp.run (Dce_ir.Lower.program instr)) in
  Alcotest.(check bool) "same outcome and extern events" true
    (Dce_interp.Interp.equivalent r1 r2)

(* ---- ground truth ---- *)

let truth_of src =
  match Core.Ground_truth.compute (Core.Instrument.program (parse src)) with
  | Core.Ground_truth.Valid t -> t
  | Core.Ground_truth.Rejected r -> Alcotest.failf "rejected: %s" r

let test_ground_truth_dead_alive () =
  let t = truth_of {|
int g;
int main(void) {
  if (g == 0) { g = 1; } else { g = 2; }
  return g;
}
|} in
  Alcotest.(check iset) "then-arm alive" (iset_of_list [ 0 ]) t.Core.Ground_truth.alive;
  Alcotest.(check iset) "else-arm dead" (iset_of_list [ 1 ]) t.Core.Ground_truth.dead

let test_ground_truth_rejects_no_main () =
  match Core.Ground_truth.compute (parse "static int f(void) { return 0; }") with
  | Core.Ground_truth.Rejected _ -> ()
  | Core.Ground_truth.Valid _ -> Alcotest.fail "should reject"

let test_ground_truth_rejects_nontermination () =
  match
    Core.Ground_truth.compute ~fuel:1000
      (Core.Instrument.program (parse "int main(void) { while (1) { use(1); } return 0; }"))
  with
  | Core.Ground_truth.Rejected _ -> ()
  | Core.Ground_truth.Valid _ -> Alcotest.fail "should reject on fuel"

(* ---- differential ---- *)

let test_differential_sets () =
  let mine = iset_of_list [ 1; 2; 3 ] in
  let other = iset_of_list [ 2 ] in
  Alcotest.(check iset) "missed vs other" (iset_of_list [ 1; 3 ])
    (Core.Differential.missed_vs_other ~mine ~other);
  Alcotest.(check iset) "missed vs dead" (iset_of_list [ 2; 3 ])
    (Core.Differential.missed ~surviving:mine ~dead:(iset_of_list [ 0; 2; 3 ]))

let test_differential_config_names () =
  let cfg = { Core.Differential.compiler = C.Gcc_sim.compiler; level = C.Level.O2; version = None } in
  Alcotest.(check string) "name" "gcc-sim -O2" (Core.Differential.config_name cfg);
  let cfg = { cfg with Core.Differential.version = Some 7 } in
  Alcotest.(check string) "versioned name" "gcc-sim -O2 @v7" (Core.Differential.config_name cfg)

(* ---- primary analysis ---- *)

let graph_of src =
  let instr = Core.Instrument.program (parse src) in
  let truth =
    match Core.Ground_truth.compute instr with
    | Core.Ground_truth.Valid t -> t
    | Core.Ground_truth.Rejected r -> Alcotest.failf "rejected: %s" r
  in
  ( instr,
    Core.Primary.build ~live_blocks:truth.Core.Ground_truth.live_blocks
      (Dce_ir.Lower.program instr) )

let test_primary_nested_dead () =
  (* paper Listing 5 / Figure 2: B3 nested in B2; only B2 is primary *)
  let _, g = graph_of {|
static int x;
int main(void) {
  int e2 = ext(1) & 1;
  if (x) {
    use(1);
    if (e2) { use(2); }
  }
  return 0;
}
|} in
  (* marker 0 heads the outer body, marker 1 the inner *)
  Alcotest.(check iset) "inner's pred is outer" (iset_of_list [ 0 ])
    (Core.Primary.predecessors g 1);
  Alcotest.(check bool) "outer has root context" true (Core.Primary.has_root_context g 0);
  let missed = iset_of_list [ 0; 1 ] in
  let primary = Core.Primary.primary_missed g ~alive:Ir.Iset.empty ~missed in
  Alcotest.(check iset) "only the outer is primary" (iset_of_list [ 0 ]) primary

let test_primary_detected_pred_promotes () =
  let _, g = graph_of {|
static int x;
int main(void) {
  int e2 = ext(1) & 1;
  if (x) {
    use(1);
    if (e2) { use(2); }
  }
  return 0;
}
|} in
  (* if the outer is detected (eliminated) and only the inner missed, the
     inner becomes primary — the paper's second scenario in §3.2 *)
  let primary = Core.Primary.primary_missed g ~alive:Ir.Iset.empty ~missed:(iset_of_list [ 1 ]) in
  Alcotest.(check iset) "inner becomes primary" (iset_of_list [ 1 ]) primary

let test_primary_live_pred () =
  let _, g = graph_of {|
int main(void) {
  int t = ext(1) & 3;
  if (t < 100) {
    use(1);
    if (t > 50) { use(2); }
  }
  return 0;
}
|} in
  (* outer alive, inner dead: inner missed is primary *)
  let primary =
    Core.Primary.primary_missed g ~alive:(iset_of_list [ 0 ]) ~missed:(iset_of_list [ 1 ])
  in
  Alcotest.(check iset) "live pred makes it primary" (iset_of_list [ 1 ]) primary

let test_primary_sequential_markers () =
  (* two sequential dead ifs: the second's deadness is independent *)
  let _, g = graph_of {|
static int x;
int main(void) {
  if (x) { use(1); }
  if (x) { use(2); }
  return 0;
}
|} in
  let missed = iset_of_list [ 0; 1 ] in
  let primary = Core.Primary.primary_missed g ~alive:Ir.Iset.empty ~missed in
  (* both are primary: neither is inside the other; marker 1's preds are the
     root context (the path around marker 0's dead block) *)
  Alcotest.(check bool) "marker 0 primary" true (Ir.Iset.mem 0 primary);
  Alcotest.(check bool) "marker 1 primary" true (Ir.Iset.mem 1 primary)

let test_primary_interprocedural () =
  (* a dead callee's marker has the callsite context as predecessor *)
  let _, g = graph_of {|
static int x;
static void callee(void) { if (x) { use(1); } }
int main(void) {
  if (x) {
    use(2);
    callee();
  }
  return 0;
}
|} in
  (* marker 0 is callee's if-body; marker 1 is main's if-body (instrumentation
     order: callee first in program order) *)
  Alcotest.(check iset) "callee marker pred = callsite marker"
    (iset_of_list [ 1 ])
    (Core.Primary.predecessors g 0);
  let missed = iset_of_list [ 0; 1 ] in
  let primary = Core.Primary.primary_missed g ~alive:Ir.Iset.empty ~missed in
  Alcotest.(check iset) "only the caller block is primary" (iset_of_list [ 1 ]) primary

let test_primary_intraprocedural_ablation () =
  let instr = Core.Instrument.program (parse {|
static int x;
static void callee(void) { if (x) { use(1); } }
int main(void) {
  if (x) { use(2); callee(); }
  return 0;
}
|}) in
  let g =
    Core.Primary.build ~interprocedural:false (Dce_ir.Lower.program instr)
  in
  let missed = iset_of_list [ 0; 1 ] in
  let primary = Core.Primary.primary_missed g ~alive:Ir.Iset.empty ~missed in
  (* without call edges the callee's marker looks primary too *)
  Alcotest.(check iset) "ablation over-reports" (iset_of_list [ 0; 1 ]) primary

(* ---- analysis orchestration ---- *)

let test_analysis_end_to_end () =
  let prog = parse {|
static int a = 0;
int main(void) {
  if (a) { use(1); }
  a = 0;
  return 0;
}
|} in
  match Core.Analysis.run prog with
  | Core.Analysis.Rejected r -> Alcotest.failf "rejected: %s" r
  | Core.Analysis.Analyzed a ->
    Alcotest.(check int) "10 configurations" 10 (List.length a.Core.Analysis.configs);
    Alcotest.(check int) "no soundness violations" 0
      (List.length (Core.Analysis.soundness_violations a));
    (* the Listing-4 asymmetry shows up in the per-config sets *)
    let gcc = Option.get (Core.Analysis.find_config a "gcc-sim" C.Level.O3) in
    let llvm = Option.get (Core.Analysis.find_config a "llvm-sim" C.Level.O3) in
    Alcotest.(check iset) "gcc misses marker 0" (iset_of_list [ 0 ]) gcc.Core.Analysis.missed;
    Alcotest.(check iset) "llvm eliminates it" Ir.Iset.empty llvm.Core.Analysis.missed

let test_analysis_rejects_invalid () =
  match Core.Analysis.run (parse "int b[2]; int main(void) { int i = 7; return b[i]; }") with
  | Core.Analysis.Rejected _ -> ()
  | Core.Analysis.Analyzed _ -> Alcotest.fail "trapping program must be rejected"

(* ---- diagnose ---- *)

let test_diagnose_gva () =
  let instr = Core.Instrument.program (parse {|
static int a = 0;
int main(void) {
  if (a) { use(1); }
  a = 0;
  return 0;
}
|}) in
  let d = Core.Diagnose.run C.Gcc_sim.compiler C.Level.O3 instr ~marker:0 in
  Alcotest.(check string) "flow-sensitivity repairs it" "gva:flow-sensitive"
    (Core.Diagnose.signature d)

let test_diagnose_addr_cmp () =
  let instr = Core.Instrument.program (parse {|
int a;
int b[2];
int main(void) {
  if (&a == &b[1]) { use(1); }
  return 0;
}
|}) in
  let d = Core.Diagnose.run C.Llvm_sim.compiler C.Level.O3 instr ~marker:0 in
  Alcotest.(check string) "address-compare repair" "addr-cmp:full" (Core.Diagnose.signature d)

let test_diagnose_unknown () =
  (* a marker no single repair can eliminate: opaque runtime condition *)
  let instr = Core.Instrument.program (parse {|
int main(void) {
  if ((ext(1) | 1) == 0) { use(1); }
  return 0;
}
|}) in
  (* actually VRP folds this one; use a truly opaque one *)
  let instr2 = Core.Instrument.program (parse {|
int main(void) {
  if (ext(1) == 12345678) { use(1); }
  return 0;
}
|}) in
  ignore instr;
  let d = Core.Diagnose.run C.Gcc_sim.compiler C.Level.O3 instr2 ~marker:0 in
  Alcotest.(check string) "no repair found" "unknown" (Core.Diagnose.signature d)

let suite =
  [
    ("instrument: positions", `Quick, test_instrument_positions);
    ("instrument: after conditional return", `Quick, test_instrument_after_conditional_return);
    ("instrument: empty else skipped", `Quick, test_instrument_empty_else_not_instrumented);
    ("instrument: double instrumentation rejected", `Quick, test_instrument_rejects_instrumented);
    ("instrument: behaviour preserved", `Quick, test_instrument_preserves_behaviour);
    ("ground truth: dead/alive split", `Quick, test_ground_truth_dead_alive);
    ("ground truth: rejects no-main", `Quick, test_ground_truth_rejects_no_main);
    ("ground truth: rejects non-termination", `Quick, test_ground_truth_rejects_nontermination);
    ("differential: set algebra", `Quick, test_differential_sets);
    ("differential: config names", `Quick, test_differential_config_names);
    ("primary: nested dead (Figure 2)", `Quick, test_primary_nested_dead);
    ("primary: detected predecessor promotes", `Quick, test_primary_detected_pred_promotes);
    ("primary: live predecessor", `Quick, test_primary_live_pred);
    ("primary: sequential markers", `Quick, test_primary_sequential_markers);
    ("primary: interprocedural call edges", `Quick, test_primary_interprocedural);
    ("primary: intraprocedural ablation", `Quick, test_primary_intraprocedural_ablation);
    ("analysis: end to end (Listing 4)", `Quick, test_analysis_end_to_end);
    ("analysis: rejects trapping programs", `Quick, test_analysis_rejects_invalid);
    ("diagnose: gva repair", `Quick, test_diagnose_gva);
    ("diagnose: addr-cmp repair", `Quick, test_diagnose_addr_cmp);
    ("diagnose: unknown", `Quick, test_diagnose_unknown);
  ]
