(* Tests for the bisection layer and the bisection campaign:

   - search strategies agree (exponential = linear outcome)
   - probe complexity: exponential bisection is O(log head), not O(head)
   - Not_missed / Always_missed edges, probe accounting included
   - last_good/offending_index invariants checked against the compiler
   - component-table dedup (hash-set path) and ordering
   - probe cache transparency: cached and uncached bisections are identical
   - campaign determinism: jobs N = jobs 1 = sequential find_regression
   - campaign checkpoint/resume from a torn journal *)

open Helpers
module Campaign = Dce_campaign
module Engine = Campaign.Engine
module Bisect = Dce_bisect.Bisect
module Bc = Campaign.Bisect_campaign

let compilers = [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ]

(* [Version.commit] carries an [apply] closure, and OCaml's polymorphic [=]
   raises on functional values — so outcomes are compared through
   closure-free keys, and whole campaigns through their journal JSON. *)
let outcome_key = function
  | Bisect.Not_missed -> ("not-missed", "", 0, 0)
  | Bisect.Always_missed -> ("always-missed", "", 0, 0)
  | Bisect.Regression r ->
    ("regression", r.Bisect.offending.C.Version.id, r.Bisect.offending_index, r.Bisect.last_good)

let cases_json (b : Bc.t) =
  Array.to_list b.Bc.b_cases
  |> List.map (function
       | Engine.Done r -> Campaign.Json.to_string (Bc.codec.Engine.encode r)
       | Engine.Crashed q -> Printf.sprintf "crashed:%d:%s" q.Engine.q_case q.Engine.q_stage)

(* (compiler, instrumented program, marker, regression) triples found by
   scanning generated programs: markers that survive at HEAD -O3 and bisect
   to an offending commit.  Shared by several tests. *)
let regression_triples = lazy begin
  let found = ref [] in
  let seed = ref 1 in
  while List.length !found < 3 && !seed <= 40 do
    let prog = Core.Instrument.program (smith_program !seed) in
    List.iter
      (fun compiler ->
        List.iter
          (fun marker ->
            if List.length !found < 3 then
              match Bisect.find_regression compiler C.Level.O3 prog ~marker with
              | Bisect.Regression r -> found := (compiler, prog, marker, r) :: !found
              | Bisect.Always_missed | Bisect.Not_missed -> ())
          (C.Compiler.surviving_markers compiler C.Level.O3 prog))
      compilers;
    incr seed
  done;
  match !found with
  | [] -> Alcotest.fail "no bisectable regression in 40 generated programs"
  | l -> List.rev l
end

(* ------------------------------------------------------------------ *)
(* search strategies and probe complexity                              *)
(* ------------------------------------------------------------------ *)

let test_exp_linear_agree () =
  List.iter
    (fun (compiler, prog, marker, _) ->
      let exp = Bisect.find_regression ~search:`Exponential compiler C.Level.O3 prog ~marker in
      let lin = Bisect.find_regression ~search:`Linear compiler C.Level.O3 prog ~marker in
      Alcotest.(check bool) "exponential = linear" true (outcome_key exp = outcome_key lin))
    (Lazy.force regression_triples)

let ilog2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

let test_probe_bound () =
  List.iter
    (fun (compiler, prog, marker, _) ->
      let head = C.Compiler.head compiler in
      let _, probes =
        Bisect.find_regression_counted ~search:`Exponential compiler C.Level.O3 prog ~marker
      in
      (* 1 HEAD probe + <= log2(head)+2 backoff probes + <= log2(head)+1
         binary-search probes: comfortably under 2*log2(head) + 4 *)
      let bound = (2 * ilog2 head) + 4 in
      if probes > bound then
        Alcotest.failf "bisection used %d probes, O(log) bound is %d (head %d)" probes bound head)
    (Lazy.force regression_triples)

(* ------------------------------------------------------------------ *)
(* outcome edges                                                       *)
(* ------------------------------------------------------------------ *)

let test_not_missed () =
  (* a trivially dead marker every compiler eliminates at HEAD -O3 *)
  let prog = Core.Instrument.program (parse "int main(void) { if (0) { use(1); } return 0; }") in
  List.iter
    (fun compiler ->
      match Bisect.find_regression_counted compiler C.Level.O3 prog ~marker:0 with
      | Bisect.Not_missed, probes ->
        Alcotest.(check int) "HEAD probe only" 1 probes
      | (Bisect.Always_missed | Bisect.Regression _), _ ->
        Alcotest.fail "expected Not_missed for an eliminated marker")
    compilers

let test_always_missed () =
  (* a marker behind an unanalyzable branch survives every version: the
     compiler can never prove it dead, so it is not a regression *)
  let prog =
    Core.Instrument.program
      (parse "int main(void) { if (ext(1)) { use(1); } return 0; }")
  in
  let markers = Dce_minic.Ast.markers_of_program prog in
  Alcotest.(check bool) "program instrumented" true (markers <> []);
  List.iter
    (fun compiler ->
      let marker = List.hd markers in
      match Bisect.find_regression_counted compiler C.Level.O3 prog ~marker with
      | Bisect.Always_missed, probes ->
        let head = C.Compiler.head compiler in
        (* HEAD, the exponential walk down, and the final probe at 0 *)
        Alcotest.(check bool) "O(log) probes to give up" true (probes <= ilog2 head + 4)
      | (Bisect.Not_missed | Bisect.Regression _), _ ->
        Alcotest.fail "expected Always_missed for a live marker")
    compilers

let test_regression_invariants () =
  List.iter
    (fun (compiler, prog, marker, r) ->
      Alcotest.(check int) "offending = last_good + 1" (r.Bisect.last_good + 1)
        r.Bisect.offending_index;
      Alcotest.(check bool) "positive probe count" true (r.Bisect.compilations > 0);
      let missed_at v =
        List.mem marker (C.Compiler.surviving_markers compiler ~version:v C.Level.O3 prog)
      in
      Alcotest.(check bool) "eliminated at last_good" false (missed_at r.Bisect.last_good);
      Alcotest.(check bool) "missed at offending version" true (missed_at r.Bisect.offending_index);
      Alcotest.(check bool) "offending commit is history[index-1]" true
        (List.nth compiler.C.Compiler.history (r.Bisect.offending_index - 1)
        == r.Bisect.offending))
    (Lazy.force regression_triples)

let test_cache_transparency () =
  List.iter
    (fun (compiler, prog, marker, _) ->
      C.Compiler.clear_caches ();
      let key (o, probes) = (outcome_key o, probes) in
      let cached = key (Bisect.find_regression_counted ~cache:true compiler C.Level.O3 prog ~marker) in
      (* run the cached variant twice: a warm cache must not change anything *)
      let warm = key (Bisect.find_regression_counted ~cache:true compiler C.Level.O3 prog ~marker) in
      let uncached = key (Bisect.find_regression_counted ~cache:false compiler C.Level.O3 prog ~marker) in
      Alcotest.(check bool) "cached = uncached (outcome and probes)" true (cached = uncached);
      Alcotest.(check bool) "warm cache identical" true (warm = cached))
    (Lazy.force regression_triples)

(* ------------------------------------------------------------------ *)
(* component table                                                     *)
(* ------------------------------------------------------------------ *)

let test_component_table_dedup () =
  let mk summary component files =
    C.Version.make_commit ~summary ~component ~files (fun _ f -> f)
  in
  let a = mk "commit a" "Alias Analysis" [ "tree-ssa-alias.c"; "tree-ssa.c" ] in
  let b = mk "commit b" "Alias Analysis" [ "tree-ssa-alias.c" ] in
  let c = mk "commit c" "Vectorizer" [ "tree-vect-loop.c" ] in
  (* duplicates by id (same summary -> same derived id) must collapse *)
  let rows = Bisect.component_table [ a; b; a; c; b; a ] in
  Alcotest.(check int) "two components" 2 (List.length rows);
  (match rows with
   | [ alias; vect ] ->
     Alcotest.(check string) "sorted by component" "Alias Analysis" alias.Bisect.component;
     Alcotest.(check int) "alias commits deduplicated" 2 alias.Bisect.commits;
     Alcotest.(check int) "alias files distinct" 2 alias.Bisect.files;
     Alcotest.(check string) "second row" "Vectorizer" vect.Bisect.component;
     Alcotest.(check int) "vect commits" 1 vect.Bisect.commits;
     Alcotest.(check int) "vect files" 1 vect.Bisect.files
   | _ -> Alcotest.fail "unexpected row shape");
  Alcotest.(check (list (pair string int)))
    "empty input" []
    (List.map (fun r -> (r.Bisect.component, r.Bisect.commits)) (Bisect.component_table []))

(* ------------------------------------------------------------------ *)
(* the bisection campaign                                              *)
(* ------------------------------------------------------------------ *)

let campaign_seed = 4242
let campaign_count = 6

let corpus = lazy (Campaign.Corpus.run ~jobs:2 ~seed:campaign_seed ~count:campaign_count ())

let test_campaign_jobs_determinism () =
  let c = Lazy.force corpus in
  let a = Bc.run ~jobs:1 c in
  let b = Bc.run ~jobs:3 c in
  Alcotest.(check (list string)) "case reports identical" (cases_json a) (cases_json b);
  Alcotest.(check int) "pair counts equal" a.Bc.b_pairs b.Bc.b_pairs;
  Alcotest.(check int) "probe totals equal" a.Bc.b_probes b.Bc.b_probes;
  Alcotest.(check string) "summary identical" (Bc.summary a) (Bc.summary b);
  Alcotest.(check string) "component tables identical" (Bc.component_tables a)
    (Bc.component_tables b);
  (* the probe cache must also be transparent at campaign level *)
  let nc = Bc.run ~cache:false ~jobs:3 c in
  Alcotest.(check (list string)) "uncached campaign identical" (cases_json a) (cases_json nc)

let test_campaign_equals_sequential () =
  let c = Lazy.force corpus in
  let b = Bc.run ~jobs:4 c in
  Alcotest.(check bool) "some pairs to bisect" true (b.Bc.b_pairs > 0);
  let programs = Campaign.Corpus.instrumented_programs c in
  Array.iter
    (function
      | Engine.Done r ->
        List.iter
          (fun (bs : Bc.bisection) ->
            let expected =
              Bisect.find_regression
                (compiler_named
                   (if bs.Bc.bs_compiler = "gcc-sim" then "gcc" else "llvm"))
                C.Level.O3
                programs.(r.Bc.br_case)
                ~marker:bs.Bc.bs_marker
            in
            Alcotest.(check bool) "campaign = sequential find_regression" true
              (outcome_key bs.Bc.bs_outcome = outcome_key expected))
          r.Bc.br_bisections
      | Engine.Crashed _ -> Alcotest.fail "unexpected quarantine")
    b.Bc.b_cases;
  (* every (config, missed-marker) pair at O3 is covered, in order *)
  Array.iteri
    (fun i case ->
      match case with
      | Campaign.Corpus.Case (Core.Analysis.Analyzed a, _) ->
        let expected_pairs =
          List.concat_map
            (fun (pc : Core.Analysis.per_config) ->
              if pc.Core.Analysis.cfg_level = C.Level.O3 then
                List.map
                  (fun m -> (pc.Core.Analysis.cfg_compiler, m))
                  (Ir.Iset.elements pc.Core.Analysis.missed)
              else [])
            a.Core.Analysis.configs
        in
        if expected_pairs <> [] then begin
          let slot =
            match
              Array.to_list
                (Array.map
                   (function Engine.Done r -> Some r | Engine.Crashed _ -> None)
                   b.Bc.b_cases)
              |> List.find_opt (function Some r -> r.Bc.br_case = i | None -> false)
            with
            | Some (Some r) -> r
            | _ -> Alcotest.failf "corpus case %d missing from campaign" i
          in
          Alcotest.(check bool) "pair set and order match the analysis" true
            (List.map (fun (b : Bc.bisection) -> (b.Bc.bs_compiler, b.Bc.bs_marker))
               slot.Bc.br_bisections
            = expected_pairs)
        end
      | Campaign.Corpus.Case (Core.Analysis.Rejected _, _) | Campaign.Corpus.Quarantined _ -> ())
    c.Campaign.Corpus.c_cases

let temp_journal () = Filename.temp_file "dce_bisect_test" ".jsonl"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let truncate_journal path ~cases =
  let lines = String.split_on_char '\n' (read_file path) in
  let kept = List.filteri (fun i _ -> i <= cases) lines in
  write_file path (String.concat "\n" kept ^ "\n{\"case\":99,\"stat")

let test_campaign_resume () =
  let c = Lazy.force corpus in
  let path = temp_journal () in
  let full = Bc.run ~journal:path ~jobs:1 c in
  truncate_journal path ~cases:2;
  let resumed = Bc.run ~journal:path ~jobs:2 c in
  Alcotest.(check int) "two cases restored" 2 resumed.Bc.b_resumed;
  Alcotest.(check (list string)) "case reports equal after resume" (cases_json full)
    (cases_json resumed);
  Alcotest.(check string) "tables equal after resume" (Bc.component_tables full)
    (Bc.component_tables resumed);
  (* the rewritten journal is complete: a third run re-executes nothing *)
  let third = Bc.run ~journal:path ~jobs:4 c in
  Alcotest.(check int) "all restored" (Array.length full.Bc.b_cases) third.Bc.b_resumed;
  Alcotest.(check (list string)) "third run equal" (cases_json full) (cases_json third);
  Sys.remove path

let suite =
  [
    ("bisect: exponential = linear", `Slow, test_exp_linear_agree);
    ("bisect: O(log head) probes", `Slow, test_probe_bound);
    ("bisect: Not_missed edge", `Quick, test_not_missed);
    ("bisect: Always_missed edge", `Quick, test_always_missed);
    ("bisect: regression invariants", `Slow, test_regression_invariants);
    ("bisect: probe cache transparency", `Slow, test_cache_transparency);
    ("bisect: component table dedup", `Quick, test_component_table_dedup);
    ("campaign: jobs determinism", `Slow, test_campaign_jobs_determinism);
    ("campaign: equals sequential bisection", `Slow, test_campaign_equals_sequential);
    ("campaign: resume from torn journal", `Slow, test_campaign_resume);
  ]
