(* The campaign service: crash-safe queue replay, fair scheduling,
   cancellation, deadline enforcement, retry/quarantine, and the chaos
   soak — kill the job child mid-campaign, kill the whole daemon
   mid-campaign, restart, and require the resumed job's report to be
   byte-identical to an uninterrupted run.

   Every daemon here runs in a forked child of the test process, so this
   suite MUST run before any suite that spawns a domain (OCaml 5 forbids
   Unix.fork once a domain has ever existed); test_main registers it
   first, before even the fabric suite's fork-poisoning final test. *)

module Campaign = Dce_campaign
module Json = Campaign.Json
module Serve = Dce_serve
module Job = Serve.Job
module Store = Serve.Store
module Sched = Serve.Sched
module Fsx = Dce_support.Fsx

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

(* ------------------------------------------------------------------ *)
(* write_atomic (satellite)                                            *)
(* ------------------------------------------------------------------ *)

let test_write_atomic () =
  let dir = temp_dir "dce_serve_fsx" in
  let path = Filename.concat dir "out.json" in
  Fsx.write_atomic path "first";
  Alcotest.(check string) "written" "first" (read_file path);
  Fsx.write_atomic path "second, longer than before";
  Alcotest.(check string) "overwritten atomically" "second, longer than before" (read_file path);
  let leftovers =
    Sys.readdir dir |> Array.to_list |> List.filter (fun f -> f <> "out.json")
  in
  Alcotest.(check (list string)) "no temp files left behind" [] leftovers;
  Fsx.rm_rf dir

(* ------------------------------------------------------------------ *)
(* runs list / gc (satellite)                                          *)
(* ------------------------------------------------------------------ *)

let fake_run ~root ~id ~campaign ~seed ~count ~cases ~age =
  let dir = Filename.concat root id in
  Fsx.mkdir_p dir;
  Fsx.write_atomic
    (Filename.concat dir "meta.json")
    (Json.to_string
       (Json.Obj
          [
            ("campaign", Json.String campaign); ("seed", Json.Int seed); ("count", Json.Int count);
          ]));
  if cases > 0 then
    Fsx.write_atomic
      (Campaign.Run_store.journal_path dir)
      (String.concat "" (List.init (cases + 1) (fun i -> Printf.sprintf "{\"line\":%d}\n" i)));
  let t = Unix.gettimeofday () -. age in
  Unix.utimes dir t t

let test_runs_list_and_gc () =
  let root = temp_dir "dce_serve_runs" in
  fake_run ~root ~id:"run-00000000000000a" ~campaign:"hunt" ~seed:1 ~count:10 ~cases:10
    ~age:3600.;
  fake_run ~root ~id:"run-00000000000000b" ~campaign:"triage" ~seed:2 ~count:5 ~cases:0 ~age:60.;
  fake_run ~root ~id:"run-00000000000000c" ~campaign:"hunt" ~seed:3 ~count:7 ~cases:3 ~age:1.;
  let entries = Campaign.Run_store.list_runs ~root in
  Alcotest.(check (list string))
    "newest first"
    [ "run-00000000000000c"; "run-00000000000000b"; "run-00000000000000a" ]
    (List.map (fun e -> e.Campaign.Run_store.e_id) entries);
  let c = List.hd entries in
  Alcotest.(check string) "campaign from meta" "hunt" c.Campaign.Run_store.e_campaign;
  Alcotest.(check int) "cases from journal" 3 c.Campaign.Run_store.e_cases;
  (* dry run deletes nothing *)
  let would = Campaign.Run_store.gc ~dry_run:true ~keep_last:1 ~root () in
  Alcotest.(check (list string))
    "dry-run victims" [ "run-00000000000000b"; "run-00000000000000a" ] would;
  Alcotest.(check int) "dry run kept everything" 3
    (List.length (Campaign.Run_store.list_runs ~root));
  (* age-gated: only the hour-old run is older than 10 minutes *)
  let pruned = Campaign.Run_store.gc ~keep_last:1 ~older_than:600. ~root () in
  Alcotest.(check (list string)) "age-gated victims" [ "run-00000000000000a" ] pruned;
  (* keep-last alone prunes every unprotected run *)
  let pruned = Campaign.Run_store.gc ~keep_last:1 ~root () in
  Alcotest.(check (list string)) "keep-last victims" [ "run-00000000000000b" ] pruned;
  Alcotest.(check (list string))
    "survivor" [ "run-00000000000000c" ]
    (List.map (fun e -> e.Campaign.Run_store.e_id) (Campaign.Run_store.list_runs ~root));
  Fsx.rm_rf root

(* ------------------------------------------------------------------ *)
(* job lifecycle fold + store replay                                   *)
(* ------------------------------------------------------------------ *)

let test_queue_replay () =
  let spool = temp_dir "dce_serve_store" in
  let st = Store.open_spool spool in
  let spec = { Job.default_spec with Job.sp_count = 3; sp_lane = "lane-a" } in
  let id = Store.submit st ~time:1. spec in
  Alcotest.(check string) "first id" "job-000001" id;
  let id2 = Store.submit st ~time:2. { Job.default_spec with Job.sp_lane = "lane-b" } in
  Alcotest.(check string) "second id" "job-000002" id2;
  (* a full retry history: running -> strike requeue -> running again *)
  Store.append st id ~time:3. (Job.Running 4242);
  Store.append st id ~time:4.
    (Job.Requeued { rq_reason = "worker died"; rq_strike = true; rq_not_before = 5. });
  Store.append st id ~time:6. (Job.Running 4243);
  (* torn tail: a half-written record must be skipped, not fatal *)
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 (Store.state_path st id)
  in
  output_string oc "{\"t\":7,\"ev\":\"don";
  close_out oc;
  (match Store.load st id with
   | None -> Alcotest.fail "job should load"
   | Some (loaded_spec, events) ->
     Alcotest.(check int) "spec round-trips" 3 loaded_spec.Job.sp_count;
     Alcotest.(check string) "lane round-trips" "lane-a" loaded_spec.Job.sp_lane;
     let v = Job.view_of_events events in
     (match v.Job.v_state with
      | Job.S_running pid -> Alcotest.(check int) "last complete event wins" 4243 pid
      | s -> Alcotest.failf "expected running, got %s" (Job.state_to_string s));
     Alcotest.(check int) "strikes survive replay" 1 v.Job.v_strikes);
  let all = Store.load_all st in
  Alcotest.(check (list string))
    "load_all in submission order" [ "job-000001"; "job-000002" ]
    (List.map (fun (i, _, _) -> i) all);
  Fsx.rm_rf spool

let test_sched_fair () =
  let cand id lane seq = { Sched.cd_id = id; cd_lane = lane; cd_seq = seq } in
  (* lane a has a backlog; lane b has one late job.  Round-robin must
     alternate instead of draining a first. *)
  let pool = [ cand "a1" "a" 1; cand "a2" "a" 2; cand "a3" "a" 3; cand "b1" "b" 4 ] in
  let pick last pool = Option.map (fun c -> c.Sched.cd_id) (Sched.next ?last pool) in
  Alcotest.(check (option string)) "first pick: lane a, lowest seq" (Some "a1") (pick None pool);
  let pool = List.filter (fun c -> c.Sched.cd_id <> "a1") pool in
  Alcotest.(check (option string))
    "after lane a served, lane b next" (Some "b1")
    (pick (Some "a") pool);
  let pool = List.filter (fun c -> c.Sched.cd_id <> "b1") pool in
  Alcotest.(check (option string)) "back to lane a" (Some "a2") (pick (Some "b") pool);
  Alcotest.(check (option string)) "empty pool" None (pick (Some "a") []);
  (* a drained lane in [last] must not wedge the rotation *)
  Alcotest.(check (option string)) "unknown last lane" (Some "a2") (pick (Some "gone") pool)

(* ------------------------------------------------------------------ *)
(* the live daemon: forked, driven over the socket                     *)
(* ------------------------------------------------------------------ *)

let hunt_seed = 4242
let hunt_count = 6

let test_config ?chaos ~spool () =
  {
    (Serve.Daemon.default ~spool) with
    Serve.Daemon.cf_tick = 0.02;
    cf_drain_grace = 3.0;
    cf_backoff = 0.05;
    cf_chaos = chaos;
    cf_quiet = true;
  }

let fork_daemon cf =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (try Serve.Daemon.run cf with _ -> Unix._exit 1);
    Unix._exit 0
  | pid -> pid

let wait_pid pid =
  match Unix.waitpid [] pid with _, status -> status

let rec wait_socket ?(tries = 200) path =
  if Sys.file_exists path then ()
  else if tries = 0 then Alcotest.failf "daemon socket %s never appeared" path
  else begin
    ignore (Unix.select [] [] [] 0.05);
    wait_socket ~tries:(tries - 1) path
  end

let submit_hunt ?(count = hunt_count) ?deadline ~socket () =
  match
    Serve.Client.submit ~socket
      { Job.default_spec with Job.sp_seed = hunt_seed; sp_count = count; sp_deadline = deadline }
  with
  | Ok id -> id
  | Error e -> Alcotest.failf "submit: %s" e

let wait_terminal ?(timeout = 120.) ~socket job =
  match Serve.Client.wait ~timeout ~socket ~job () with
  | Ok j -> Option.value ~default:"?" (Serve.Client.state_of_status j)
  | Error e -> Alcotest.failf "wait %s: %s" job e

(* poll until the job's campaign journal shows progress — "mid-campaign"
   made deterministic *)
let wait_progress ?(min_cases = 1) ~socket job =
  let deadline = Unix.gettimeofday () +. 60. in
  let rec loop () =
    if Unix.gettimeofday () > deadline then Alcotest.failf "%s never made progress" job
    else
      match Serve.Client.status ~job ~socket () with
      | Error _ -> retry ()
      | Ok j -> (
        match
          Option.bind (Json.member "job_status" j) (fun js ->
              Option.bind (Json.member "progress" js) Json.to_int)
        with
        | Some p when p >= min_cases -> ()
        | _ -> retry ())
  and retry () =
    ignore (Unix.select [] [] [] 0.02);
    loop ()
  in
  loop ()

let job_pid ~spool job =
  let st = Store.open_spool spool in
  List.fold_left
    (fun acc ev -> match ev with Job.Running pid -> Some pid | _ -> acc)
    None (Store.load_events st job)

let alive pid = match Unix.kill pid 0 with () -> true | exception Unix.Unix_error _ -> false

(* the uninterrupted baseline: the same executor the daemon's job child
   runs, in this process — what `dce_hunt hunt --run-root` produces *)
let baseline_report () =
  let root = temp_dir "dce_serve_baseline" in
  let outcome =
    Serve.Runjob.execute ~runs_root:root ~workers:1 ~jobs:1
      { Job.default_spec with Job.sp_seed = hunt_seed; sp_count = hunt_count }
  in
  match outcome.Serve.Runjob.oc_run_dir with
  | None -> Alcotest.fail "baseline hunt produced no run dir"
  | Some dir ->
    let r = (read_file (Filename.concat dir "report.json"), read_file (Filename.concat dir "report.txt")) in
    Fsx.rm_rf root;
    r

let serve_report ~spool job =
  let st = Store.open_spool spool in
  let oc =
    Serve.Runjob.outcome_of_json
      (match Json.of_string (String.trim (read_file (Store.outcome_path st job))) with
       | Ok j -> j
       | Error e -> Alcotest.failf "outcome.json: %s" e)
  in
  match oc.Serve.Runjob.oc_run_dir with
  | None -> Alcotest.fail "job outcome carries no run dir"
  | Some dir ->
    (read_file (Filename.concat dir "report.json"), read_file (Filename.concat dir "report.txt"))

let test_daemon_roundtrip () =
  let spool = temp_dir "dce_serve_rt" in
  let cf = test_config ~spool () in
  let pid = fork_daemon cf in
  let socket = Serve.Daemon.socket_path cf in
  wait_socket socket;
  let job = submit_hunt ~socket () in
  Alcotest.(check string) "job completes" "done" (wait_terminal ~socket job);
  let base_json, base_txt = baseline_report () in
  let got_json, got_txt = serve_report ~spool job in
  Alcotest.(check string) "report.json identical to direct run" base_json got_json;
  Alcotest.(check string) "report.txt identical to direct run" base_txt got_txt;
  (match Serve.Client.shutdown ~socket with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "shutdown: %s" e);
  Alcotest.(check bool) "daemon exits 0" true (wait_pid pid = Unix.WEXITED 0);
  Alcotest.(check bool) "socket removed on drain" false (Sys.file_exists socket);
  Fsx.rm_rf spool

let test_daemon_cancel () =
  let spool = temp_dir "dce_serve_cancel" in
  let cf = test_config ~spool () in
  let pid = fork_daemon cf in
  let socket = Serve.Daemon.socket_path cf in
  wait_socket socket;
  let job = submit_hunt ~count:60 ~socket () in
  wait_progress ~socket job;
  (match Serve.Client.cancel ~socket ~job with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "cancel: %s" e);
  Alcotest.(check string) "cancelled" "cancelled" (wait_terminal ~socket job);
  (match job_pid ~spool job with
   | None -> Alcotest.fail "no pid recorded"
   | Some jp ->
     ignore (Unix.select [] [] [] 0.2);
     Alcotest.(check bool) "job process group is gone" false (alive jp));
  ignore (Serve.Client.shutdown ~socket);
  ignore (wait_pid pid);
  Fsx.rm_rf spool

let test_daemon_deadline () =
  let spool = temp_dir "dce_serve_deadline" in
  let cf = test_config ~spool () in
  let pid = fork_daemon cf in
  let socket = Serve.Daemon.socket_path cf in
  wait_socket socket;
  let job = submit_hunt ~count:200 ~deadline:0.4 ~socket () in
  Alcotest.(check string) "deadline trips to failed" "failed" (wait_terminal ~socket job);
  let st = Store.open_spool spool in
  let v = Job.view_of_events (Store.load_events st job) in
  (match v.Job.v_state with
   | Job.S_failed reason ->
     Alcotest.(check bool)
       (Printf.sprintf "reason names the deadline: %s" reason)
       true
       (Helpers.contains reason "eadline")
   | s -> Alcotest.failf "expected failed, got %s" (Job.state_to_string s));
  ignore (Serve.Client.shutdown ~socket);
  ignore (wait_pid pid);
  Fsx.rm_rf spool

(* chaos: the daemon SIGKILLs the job child mid-campaign; the retry must
   resume from the journal and produce the identical report *)
let test_chaos_kill_job () =
  let spool = temp_dir "dce_serve_killjob" in
  let chaos = { Serve.Daemon.kill_job_at = Some 2; crash_daemon_at = None } in
  let cf = test_config ~chaos ~spool () in
  let pid = fork_daemon cf in
  let socket = Serve.Daemon.socket_path cf in
  wait_socket socket;
  let job = submit_hunt ~socket () in
  Alcotest.(check string) "retried to completion" "done" (wait_terminal ~socket job);
  let st = Store.open_spool spool in
  let v = Job.view_of_events (Store.load_events st job) in
  Alcotest.(check int) "the kill cost one strike" 1 v.Job.v_strikes;
  let base_json, base_txt = baseline_report () in
  let got_json, got_txt = serve_report ~spool job in
  Alcotest.(check string) "report.json identical after mid-job kill" base_json got_json;
  Alcotest.(check string) "report.txt identical after mid-job kill" base_txt got_txt;
  ignore (Serve.Client.shutdown ~socket);
  ignore (wait_pid pid);
  Fsx.rm_rf spool

(* chaos: the daemon itself dies without any cleanup mid-campaign; a
   restarted daemon must replay the queue, resume the job, and produce
   the identical report *)
let test_chaos_crash_daemon () =
  let spool = temp_dir "dce_serve_crash" in
  let chaos = { Serve.Daemon.kill_job_at = None; crash_daemon_at = Some 2 } in
  let cf = test_config ~chaos ~spool () in
  let pid = fork_daemon cf in
  let socket = Serve.Daemon.socket_path cf in
  wait_socket socket;
  let job = submit_hunt ~socket () in
  Alcotest.(check bool) "daemon crashed as planned" true (wait_pid pid = Unix.WEXITED 70);
  (* the restarted daemon inherits the spool — stale socket, running-state
     journal, possibly a still-running orphan child *)
  let pid2 = fork_daemon (test_config ~spool ()) in
  Alcotest.(check string) "job resumed to done" "done" (wait_terminal ~socket job);
  let base_json, base_txt = baseline_report () in
  let got_json, got_txt = serve_report ~spool job in
  Alcotest.(check string) "report.json identical after daemon crash" base_json got_json;
  Alcotest.(check string) "report.txt identical after daemon crash" base_txt got_txt;
  ignore (Serve.Client.shutdown ~socket);
  ignore (wait_pid pid2);
  Fsx.rm_rf spool

(* SIGKILL, not simulated: the strongest form of the acceptance test *)
let test_sigkill_daemon_mid_campaign () =
  let spool = temp_dir "dce_serve_sigkill" in
  let cf = test_config ~spool () in
  let pid = fork_daemon cf in
  let socket = Serve.Daemon.socket_path cf in
  wait_socket socket;
  let job = submit_hunt ~count:40 ~socket () in
  wait_progress ~min_cases:2 ~socket job;
  Unix.kill pid Sys.sigkill;
  ignore (wait_pid pid);
  (* the orphaned job child keeps its process group; the restarted daemon
     must kill it before requeueing (single-writer journals) *)
  let pid2 = fork_daemon (test_config ~spool ()) in
  Alcotest.(check string) "job resumed to done" "done" (wait_terminal ~timeout:180. ~socket job);
  let st = Store.open_spool spool in
  let events = Store.load_events st job in
  Alcotest.(check bool) "replay recorded the restart requeue" true
    (List.exists
       (function
         | Job.Requeued { rq_reason = "daemon-restart"; rq_strike = false; _ } -> true
         | _ -> false)
       events);
  let oc =
    Serve.Runjob.outcome_of_json
      (match Json.of_string (String.trim (read_file (Store.outcome_path st job))) with
       | Ok j -> j
       | Error e -> Alcotest.failf "outcome.json: %s" e)
  in
  Alcotest.(check bool) "second attempt resumed from the journal" true
    (oc.Serve.Runjob.oc_resumed > 0);
  ignore (Serve.Client.shutdown ~socket);
  ignore (wait_pid pid2);
  Fsx.rm_rf spool

let test_sigterm_drain () =
  let spool = temp_dir "dce_serve_drain" in
  let cf = test_config ~spool () in
  let pid = fork_daemon cf in
  let socket = Serve.Daemon.socket_path cf in
  wait_socket socket;
  let job = submit_hunt ~count:60 ~socket () in
  wait_progress ~socket job;
  let jp = match job_pid ~spool job with Some p -> p | None -> Alcotest.fail "no pid" in
  Unix.kill pid Sys.sigterm;
  Alcotest.(check bool) "drain exits 0" true (wait_pid pid = Unix.WEXITED 0);
  Alcotest.(check bool) "socket removed" false (Sys.file_exists socket);
  Alcotest.(check bool) "job process group reaped" false (alive jp);
  let st = Store.open_spool spool in
  let v = Job.view_of_events (Store.load_events st job) in
  (match v.Job.v_state with
   | Job.S_queued -> ()
   | s -> Alcotest.failf "drained job should be queued, got %s" (Job.state_to_string s));
  Alcotest.(check int) "drain requeue is strike-free" 0 v.Job.v_strikes;
  (* the lock is released: a fresh daemon can adopt the spool and finish
     the requeued job *)
  let pid2 = fork_daemon (test_config ~spool ()) in
  Alcotest.(check string) "requeued job finishes after restart" "done"
    (wait_terminal ~socket job);
  ignore (Serve.Client.shutdown ~socket);
  ignore (wait_pid pid2);
  Fsx.rm_rf spool

(* two daemons, one spool: the lock must turn the second away *)
let test_spool_lock_exclusive () =
  let spool = temp_dir "dce_serve_lock" in
  let cf = test_config ~spool () in
  let pid = fork_daemon cf in
  let socket = Serve.Daemon.socket_path cf in
  wait_socket socket;
  (match Unix.fork () with
   | 0 ->
     (* a second daemon on the same spool must refuse, not corrupt *)
     (try
        Serve.Daemon.run { cf with Serve.Daemon.cf_socket = Some (spool ^ "/other.sock") };
        Unix._exit 0
      with Failure _ -> Unix._exit 81)
   | pid2 ->
     Alcotest.(check bool) "second daemon refused the held spool" true
       (wait_pid pid2 = Unix.WEXITED 81));
  ignore (Serve.Client.shutdown ~socket);
  ignore (wait_pid pid);
  Fsx.rm_rf spool

(* ------------------------------------------------------------------ *)
(* fabric drain on SIGTERM (satellite)                                 *)
(* ------------------------------------------------------------------ *)

let test_fabric_sigterm_drain () =
  let dir = temp_dir "dce_serve_fabterm" in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    let codec =
      { Campaign.Engine.encode = (fun i -> Json.Int i); decode = Campaign.Json.int_exn }
    in
    let runner _ i =
      (* every worker advertises its pid so the parent can check the
         fleet is dead after the drain *)
      Fsx.write_atomic
        (Filename.concat dir (Printf.sprintf "worker-%d.pid" (Unix.getpid ())))
        (string_of_int (Unix.getpid ()));
      ignore (Unix.select [] [] [] 0.15);
      i
    in
    let code =
      try
        ignore (Campaign.Fabric.run ~codec ~workers:2 ~jobs:1 ~chunk:1 ~count:200 runner);
        0
      with
      | Campaign.Fabric.Interrupted signo -> if signo = Sys.sigterm then 77 else 78
      | _ -> 1
    in
    Unix._exit code
  | pid ->
    (* wait until at least one worker has checked in, then interrupt *)
    let deadline = Unix.gettimeofday () +. 30. in
    let rec wait_workers () =
      let pids = Sys.readdir dir in
      if Array.length pids > 0 then ()
      else if Unix.gettimeofday () > deadline then
        Alcotest.fail "fabric workers never started"
      else begin
        ignore (Unix.select [] [] [] 0.05);
        wait_workers ()
      end
    in
    wait_workers ();
    ignore (Unix.select [] [] [] 0.2);
    Unix.kill pid Sys.sigterm;
    Alcotest.(check bool)
      "coordinator raised Interrupted(SIGTERM)" true
      (wait_pid pid = Unix.WEXITED 77);
    ignore (Unix.select [] [] [] 0.3);
    Array.iter
      (fun f ->
        let wp = int_of_string (read_file (Filename.concat dir f)) in
        Alcotest.(check bool)
          (Printf.sprintf "worker %d is dead after the drain" wp)
          false (alive wp))
      (Sys.readdir dir);
    Fsx.rm_rf dir

let suite =
  [
    Alcotest.test_case "fsx: write_atomic" `Quick test_write_atomic;
    Alcotest.test_case "run_store: list and gc" `Quick test_runs_list_and_gc;
    Alcotest.test_case "store: queue replay over a torn journal" `Quick test_queue_replay;
    Alcotest.test_case "sched: fair round-robin over lanes" `Quick test_sched_fair;
    Alcotest.test_case "daemon: submit/watch/result roundtrip, byte-identical" `Slow
      test_daemon_roundtrip;
    Alcotest.test_case "daemon: cooperative cancellation" `Slow test_daemon_cancel;
    Alcotest.test_case "daemon: job deadline trips to failed" `Slow test_daemon_deadline;
    Alcotest.test_case "chaos: kill job child mid-campaign, identical report" `Slow
      test_chaos_kill_job;
    Alcotest.test_case "chaos: crash daemon mid-campaign, identical report" `Slow
      test_chaos_crash_daemon;
    Alcotest.test_case "chaos: SIGKILL daemon mid-campaign, resume on restart" `Slow
      test_sigkill_daemon_mid_campaign;
    Alcotest.test_case "daemon: SIGTERM drains, requeues, releases the lock" `Slow
      test_sigterm_drain;
    Alcotest.test_case "daemon: spool lock is exclusive" `Quick test_spool_lock_exclusive;
    Alcotest.test_case "fabric: SIGTERM drains the fleet and raises" `Quick
      test_fabric_sigterm_drain;
  ]
