(* The determinism/property wall around the campaign engine:

   - jobs-independence: a parallel campaign yields byte-identical statistics,
     findings, and triage tables to the sequential one
   - seed-sharding invariants (QCheck): disjoint shards covering the range
   - fault isolation: an injected per-case crash quarantines that case only
   - checkpoint/resume: a journal truncated mid-line resumes to the same
     final report as an uninterrupted run
   - JSON and journal codecs, metrics percentiles, Stats.merge *)

open Helpers
module Campaign = Dce_campaign
module Engine = Campaign.Engine
module Json = Campaign.Json
module Shard = Campaign.Shard
module Metrics = Campaign.Metrics
module Stats = Dce_report.Stats

let corpus_count = 50
let corpus_seed = 20220228

(* the two campaigns the determinism tests compare; shared across tests *)
let seq = lazy (Campaign.Corpus.run ~jobs:1 ~seed:corpus_seed ~count:corpus_count ())
let par = lazy (Campaign.Corpus.run ~jobs:4 ~seed:corpus_seed ~count:corpus_count ())

let temp_journal () = Filename.temp_file "dce_campaign_test" ".jsonl"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* keep the header plus [cases] complete case lines, then a torn partial
   line — the shape a killed campaign leaves behind *)
let truncate_journal path ~cases =
  let lines = String.split_on_char '\n' (read_file path) in
  let kept = List.filteri (fun i _ -> i <= cases) lines in
  write_file path (String.concat "\n" kept ^ "\n{\"case\":99,\"stat")

(* ------------------------------------------------------------------ *)
(* determinism: jobs must not change any result                        *)
(* ------------------------------------------------------------------ *)

let test_jobs_determinism_stats () =
  let sa = Campaign.Corpus.stats (Lazy.force seq) in
  let sb = Campaign.Corpus.stats (Lazy.force par) in
  Alcotest.(check int) "programs" sa.Stats.programs sb.Stats.programs;
  Alcotest.(check bool) "findings identical" true (sa.Stats.findings = sb.Stats.findings);
  Alcotest.(check bool) "regression findings identical" true
    (sa.Stats.regression_findings = sb.Stats.regression_findings);
  Alcotest.(check bool) "full stats identical" true (sa = sb);
  Alcotest.(check string) "table1" (Stats.table1 sa) (Stats.table1 sb);
  Alcotest.(check string) "table2" (Stats.table2 sa) (Stats.table2 sb);
  Alcotest.(check string) "differentials" (Stats.differential_summary sa)
    (Stats.differential_summary sb);
  Alcotest.(check string) "attribution" (Stats.attribution_table sa)
    (Stats.attribution_table sb)

let test_jobs_determinism_triage () =
  let triage c =
    let st = Campaign.Corpus.stats c in
    Dce_report.Triage.triage
      ~programs:(Campaign.Corpus.instrumented_programs c)
      (st.Stats.findings @ st.Stats.regression_findings)
  in
  let ra = triage (Lazy.force seq) in
  let rb = triage (Lazy.force par) in
  Alcotest.(check bool) "report clusters identical" true (ra = rb);
  Alcotest.(check string) "table5 identical" (Dce_report.Triage.table5 ra)
    (Dce_report.Triage.table5 rb)

let test_metrics_sanity () =
  let c = Lazy.force seq in
  let m = c.Campaign.Corpus.c_metrics in
  Alcotest.(check int) "every case executed" corpus_count m.Metrics.cases;
  Alcotest.(check bool) "throughput positive" true (m.Metrics.throughput > 0.);
  let diff =
    List.find_opt (fun s -> s.Metrics.ss_stage = "differential") m.Metrics.stages
  in
  (match diff with
   | None -> Alcotest.fail "no differential stage in metrics"
   | Some s ->
     Alcotest.(check bool) "differential sampled" true (s.Metrics.ss_samples > 0);
     Alcotest.(check bool) "p50 <= p90 <= p99" true
       (s.Metrics.ss_p50 <= s.Metrics.ss_p90 && s.Metrics.ss_p90 <= s.Metrics.ss_p99));
  let cache = m.Metrics.cache in
  Alcotest.(check bool) "cache counters moved" true
    (cache.Dce_compiler.Passmgr.cfg_hits + cache.Dce_compiler.Passmgr.cfg_misses > 0)

(* ------------------------------------------------------------------ *)
(* seed sharding (QCheck)                                              *)
(* ------------------------------------------------------------------ *)

let shard_gen = QCheck2.Gen.(pair (int_bound 300) (int_range 1 12))

let rec strictly_increasing = function
  | a :: (b :: _ as tl) -> a < b && strictly_increasing tl
  | _ -> true

let shard_disjoint_cover =
  qtest ~count:200 "shards partition 0..count-1" shard_gen (fun (count, jobs) ->
      let plan = Shard.plan ~count ~jobs in
      let all = List.concat (Array.to_list plan) in
      (* strictly increasing within each shard *)
      Array.for_all strictly_increasing plan
      (* pairwise disjoint: total size equals the union's size *)
      && List.length all = count
      (* union covers the range exactly *)
      && List.sort compare all = List.init count Fun.id)

let shard_owner_consistent =
  qtest ~count:200 "worker_of_case agrees with cases_of" shard_gen (fun (count, jobs) ->
      List.for_all
        (fun i ->
          let w = Shard.worker_of_case ~jobs i in
          0 <= w && w < jobs && List.mem i (Shard.cases_of ~count ~jobs w))
        (List.init count Fun.id))

let test_shard_invalid () =
  Alcotest.check_raises "jobs = 0" (Invalid_argument "Shard: jobs must be >= 1") (fun () ->
      ignore (Shard.cases_of ~count:4 ~jobs:0 0));
  Alcotest.check_raises "worker out of range" (Invalid_argument "Shard: worker index out of range")
    (fun () -> ignore (Shard.cases_of ~count:4 ~jobs:2 2))

(* ------------------------------------------------------------------ *)
(* engine semantics on a toy runner (cheap, no compilation)            *)
(* ------------------------------------------------------------------ *)

let toy_codec = { Engine.encode = (fun i -> Json.Int i); decode = Json.int_exn }

let test_engine_toy_parallel () =
  let r = Engine.run ~jobs:8 ~count:5 (fun _ctx i -> i * i) in
  Alcotest.(check bool) "squares in case order" true
    (Array.to_list r.Engine.outcomes = List.map (fun i -> Engine.Done (i * i)) [ 0; 1; 2; 3; 4 ]);
  Alcotest.(check int) "no quarantine" 0 (List.length r.Engine.quarantine);
  let r0 = Engine.run ~jobs:3 ~count:0 (fun _ctx i -> i) in
  Alcotest.(check int) "empty campaign" 0 (Array.length r0.Engine.outcomes)

let test_engine_innermost_stage () =
  let r =
    Engine.run ~jobs:2 ~count:6 (fun ctx i ->
        Engine.stage ctx "outer" (fun () ->
            Engine.stage ctx "inner" (fun () ->
                if i = 3 then failwith "boom";
                i)))
  in
  match r.Engine.quarantine with
  | [ q ] ->
    Alcotest.(check int) "guilty case" 3 q.Engine.q_case;
    Alcotest.(check string) "innermost stage" "inner" q.Engine.q_stage;
    Alcotest.(check bool) "error text kept" true (contains q.Engine.q_error "boom")
  | qs -> Alcotest.failf "expected one quarantined case, got %d" (List.length qs)

let test_engine_toy_resume () =
  let path = temp_journal () in
  let executed = ref [] in
  let runner _ctx i =
    executed := i :: !executed;
    i + 100
  in
  let r1 = Engine.run ~journal:path ~codec:toy_codec ~seed:7 ~jobs:1 ~count:10 runner in
  Alcotest.(check int) "first run executes all" 10 (List.length !executed);
  truncate_journal path ~cases:6;
  executed := [];
  let r2 = Engine.run ~journal:path ~codec:toy_codec ~seed:7 ~jobs:1 ~count:10 runner in
  Alcotest.(check int) "six cases restored" 6 r2.Engine.resumed;
  Alcotest.(check int) "four cases re-executed" 4 (List.length !executed);
  Alcotest.(check bool) "same outcomes" true (r1.Engine.outcomes = r2.Engine.outcomes);
  (* the rewritten journal is complete again: a third run re-executes nothing *)
  executed := [];
  let r3 = Engine.run ~journal:path ~codec:toy_codec ~seed:7 ~jobs:4 ~count:10 runner in
  Alcotest.(check int) "all restored" 10 r3.Engine.resumed;
  Alcotest.(check int) "nothing re-executed" 0 (List.length !executed);
  Alcotest.(check bool) "same outcomes across jobs" true (r1.Engine.outcomes = r3.Engine.outcomes);
  Sys.remove path

let test_engine_journal_mismatch () =
  let path = temp_journal () in
  ignore (Engine.run ~journal:path ~codec:toy_codec ~seed:1 ~jobs:1 ~count:3 (fun _ i -> i));
  (match
     Engine.run ~journal:path ~codec:toy_codec ~seed:2 ~jobs:1 ~count:3 (fun _ i -> i)
   with
   | _ -> Alcotest.fail "expected a header-mismatch failure"
   | exception Failure msg ->
     Alcotest.(check bool) "mismatch names both campaigns" true (contains msg "seed=1"));
  (match Engine.run ~journal:path ~jobs:1 ~count:3 (fun _ i -> i) with
   | _ -> Alcotest.fail "expected journal-without-codec rejection"
   | exception Invalid_argument _ -> ());
  Sys.remove path

let test_engine_crash_checkpointed () =
  let path = temp_journal () in
  let runner _ctx i = if i = 2 then failwith "flaky" else i in
  let r1 = Engine.run ~journal:path ~codec:toy_codec ~jobs:2 ~count:5 runner in
  Alcotest.(check int) "one quarantined" 1 (List.length r1.Engine.quarantine);
  (* resume with a runner that would now succeed: the journaled crash is
     replayed, not retried — quarantine is part of the campaign's record *)
  let r2 = Engine.run ~journal:path ~codec:toy_codec ~jobs:1 ~count:5 (fun _ i -> i) in
  Alcotest.(check int) "all five restored" 5 r2.Engine.resumed;
  Alcotest.(check bool) "quarantine replayed" true
    (r1.Engine.quarantine = r2.Engine.quarantine);
  Sys.remove path

(* A journal rubbed the wrong way: records the decoder does not recognize
   (from a newer build), indexes out of range, and a line a buggy float
   printer once made unparseable.  All of it must be skipped and counted —
   never fatal — with the skipped cases simply re-executed. *)
let test_engine_journal_robustness () =
  let path = temp_journal () in
  let executed = ref [] in
  let runner _ctx i =
    executed := i :: !executed;
    i + 100
  in
  let clean = Engine.run ~journal:path ~codec:toy_codec ~seed:9 ~jobs:1 ~count:6 runner in
  let lines = String.split_on_char '\n' (read_file path) in
  let header = List.nth lines 0 in
  let keep i = List.nth lines i in
  write_file path
    (String.concat "\n"
       [
         header;
         keep 1;
         keep 2;
         (* unknown record status: a record kind this build does not know *)
         "{\"case\":3,\"status\":\"from-the-future\",\"data\":303}";
         (* decodable but out of range *)
         "{\"case\":99,\"status\":\"done\",\"data\":199}";
         (* the pre-fix Json printer emitted bare nan tokens: unparseable,
            so this line and everything after it is dropped and counted *)
         "{\"case\":4,\"status\":\"done\",\"data\":nan}";
         keep 5;
         "";
       ]);
  executed := [];
  let r = Engine.run ~journal:path ~codec:toy_codec ~seed:9 ~jobs:2 ~count:6 runner in
  Alcotest.(check int) "two cases restored" 2 r.Engine.resumed;
  Alcotest.(check int) "four records skipped" 4 r.Engine.skipped;
  Alcotest.(check int) "skipped surfaced in metrics" 4
    r.Engine.metrics.Metrics.journal_skipped;
  Alcotest.(check int) "skipped cases re-executed" 4 (List.length !executed);
  Alcotest.(check bool) "outcomes equal the clean run" true
    (r.Engine.outcomes = clean.Engine.outcomes);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* fault isolation on the real corpus campaign                         *)
(* ------------------------------------------------------------------ *)

let test_fault_isolation () =
  let count = 8 in
  let clean = Campaign.Corpus.run ~jobs:2 ~seed:4242 ~count () in
  let crashed = Campaign.Corpus.run ~jobs:2 ~seed:4242 ~count ~inject_crash:[ 1; 6 ] () in
  Alcotest.(check int) "campaign completed all slots" count
    (Array.length crashed.Campaign.Corpus.c_cases);
  (match crashed.Campaign.Corpus.c_quarantine with
   | [ a; b ] ->
     Alcotest.(check (list int)) "quarantined cases" [ 1; 6 ]
       [ a.Engine.q_case; b.Engine.q_case ];
     Alcotest.(check string) "guilty stage" "generate" a.Engine.q_stage;
     Alcotest.(check bool) "error recorded" true (contains a.Engine.q_error "injected");
     let text = Campaign.Corpus.quarantine_to_string crashed in
     Alcotest.(check bool) "report names the seed" true
       (contains text (string_of_int crashed.Campaign.Corpus.c_seeds.(1)))
   | qs -> Alcotest.failf "expected 2 quarantined cases, got %d" (List.length qs));
  (* the surviving cases are untouched: findings minus the crashed programs *)
  let surviving_findings c =
    List.filter
      (fun (f : Stats.finding) -> f.Stats.f_program <> 1 && f.Stats.f_program <> 6)
      (Campaign.Corpus.stats c).Stats.findings
  in
  Alcotest.(check bool) "other cases' findings preserved" true
    (surviving_findings clean = (Campaign.Corpus.stats crashed).Stats.findings)

(* ------------------------------------------------------------------ *)
(* checkpoint/resume on the real corpus campaign                       *)
(* ------------------------------------------------------------------ *)

let test_corpus_resume () =
  let count = 8 and seed = 555 in
  let path = temp_journal () in
  let full = Campaign.Corpus.run ~journal:path ~jobs:1 ~seed ~count () in
  truncate_journal path ~cases:3;
  let resumed = Campaign.Corpus.run ~journal:path ~jobs:2 ~seed ~count () in
  Alcotest.(check int) "three cases restored" 3 resumed.Campaign.Corpus.c_resumed;
  let sa = Campaign.Corpus.stats full and sb = Campaign.Corpus.stats resumed in
  Alcotest.(check bool) "stats equal after resume" true (sa = sb);
  Alcotest.(check string) "table1 equal" (Stats.table1 sa) (Stats.table1 sb);
  Sys.remove path

(* replace the first occurrence of [needle] in [hay] *)
let replace_first hay needle replacement =
  let n = String.length needle and m = String.length hay in
  let rec find i = if i + n > m then None else if String.sub hay i n = needle then Some i else find (i + 1) in
  match find 0 with
  | None -> None
  | Some i ->
    Some (String.sub hay 0 i ^ replacement ^ String.sub hay (i + n) (m - i - n))

let test_corpus_journal_unknown_kind () =
  let count = 4 and seed = 777 in
  let path = temp_journal () in
  let clean = Campaign.Corpus.run ~journal:path ~jobs:1 ~seed ~count () in
  (* rewrite one record's payload kind to something a newer build might
     write: resume must skip (and count) it, then re-run the case *)
  let lines = String.split_on_char '\n' (read_file path) in
  let mutated =
    List.mapi
      (fun i line ->
        if i <> 2 then line
        else
          match replace_first line "\"kind\":\"" "\"kind\":\"from-the-future-" with
          | Some l -> l
          | None -> Alcotest.fail "journal record has no kind field")
      lines
  in
  write_file path (String.concat "\n" mutated);
  let resumed = Campaign.Corpus.run ~journal:path ~jobs:1 ~seed ~count () in
  Alcotest.(check int) "three cases restored" 3 resumed.Campaign.Corpus.c_resumed;
  Alcotest.(check int) "one record skipped, surfaced in metrics" 1
    resumed.Campaign.Corpus.c_metrics.Metrics.journal_skipped;
  Alcotest.(check bool) "stats equal the clean run" true
    (Campaign.Corpus.stats clean = Campaign.Corpus.stats resumed);
  Sys.remove path

let test_corpus_journal_oracle_kinds () =
  (* the specific future kinds a newer build actually writes: a size-hunt
     or level-hunt journal record must be skipped-with-count by this
     reader, not crash the resume *)
  let count = 4 and seed = 777 in
  List.iter
    (fun future_kind ->
      let path = temp_journal () in
      let clean = Campaign.Corpus.run ~journal:path ~jobs:1 ~seed ~count () in
      let lines = String.split_on_char '\n' (read_file path) in
      let mutated =
        List.mapi
          (fun i line ->
            if i <> 2 then line
            else
              (* "kind":"analyzed" becomes "kind":"size-case","x":"analyzed"
                 — still valid JSON, now carrying an oracle record's kind *)
              match
                replace_first line "\"kind\":\""
                  (Printf.sprintf "\"kind\":\"%s\",\"x\":\"" future_kind)
              with
              | Some l -> l
              | None -> Alcotest.fail "journal record has no kind field")
          lines
      in
      write_file path (String.concat "\n" mutated);
      let resumed = Campaign.Corpus.run ~journal:path ~jobs:1 ~seed ~count () in
      Alcotest.(check int) (future_kind ^ ": record skipped") 1
        resumed.Campaign.Corpus.c_metrics.Metrics.journal_skipped;
      Alcotest.(check bool) (future_kind ^ ": stats equal the clean run") true
        (Campaign.Corpus.stats clean = Campaign.Corpus.stats resumed);
      Sys.remove path)
    [ "size-case"; "inversion-case" ]

let test_value_campaign_determinism () =
  let a = Campaign.Corpus.run_value ~jobs:1 ~seed:corpus_seed ~count:6 () in
  let b = Campaign.Corpus.run_value ~jobs:3 ~seed:corpus_seed ~count:6 () in
  Alcotest.(check bool) "value cases identical" true
    (a.Campaign.Corpus.v_cases = b.Campaign.Corpus.v_cases);
  Alcotest.(check string) "value table identical" (Campaign.Corpus.value_table a)
    (Campaign.Corpus.value_table b)

(* ------------------------------------------------------------------ *)
(* Stats.merge                                                         *)
(* ------------------------------------------------------------------ *)

let test_stats_merge_equals_collect () =
  let cases = Campaign.Corpus.outcomes (Lazy.force seq) in
  let whole = Stats.collect_indexed cases in
  let bucket k = List.filter (fun (i, _) -> i mod 3 = k) cases in
  let parts = List.map (fun k -> Stats.collect_indexed (bucket k)) [ 0; 1; 2 ] in
  let fold l = List.fold_left Stats.merge (List.hd l) (List.tl l) in
  Alcotest.(check bool) "merge of shards = collect of union" true (fold parts = whole);
  (* associativity / order-independence *)
  Alcotest.(check bool) "merge order irrelevant" true (fold (List.rev parts) = whole)

(* ------------------------------------------------------------------ *)
(* JSON codec and metrics helpers                                      *)
(* ------------------------------------------------------------------ *)

let json_gen =
  let open QCheck2.Gen in
  let finite_float = map (fun (a, b) -> float_of_int a /. float_of_int (1 + abs b)) (pair int int) in
  let leaf =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun f -> Json.Float f) finite_float;
        map (fun s -> Json.String s) string;
      ]
  in
  let rec value n =
    if n = 0 then leaf
    else
      oneof
        [
          leaf;
          map (fun l -> Json.List l) (list_size (int_bound 4) (value (n - 1)));
          map
            (fun kvs -> Json.Obj kvs)
            (list_size (int_bound 4) (pair string (value (n - 1))));
        ]
  in
  value 3

let json_roundtrip =
  qtest ~count:300 "json: of_string (to_string v) = v" json_gen (fun v ->
      Json.of_string (Json.to_string v) = Ok v)

let test_json_escaping () =
  let v = Json.Obj [ ("k\"ey\n", Json.String "a\tb\\c\x01d\xc3\xa9") ] in
  Alcotest.(check bool) "awkward strings round-trip" true
    (Json.of_string (Json.to_string v) = Ok v);
  (match Json.of_string "{\"a\":[1,tru" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "truncated input must not parse");
  Alcotest.(check bool) "single line" true
    (not (String.contains (Json.to_string v) '\n'))

let test_json_nonfinite () =
  (* JSON has no nan/infinity tokens; a metrics record holding one (e.g. a
     0/0 throughput) must still serialize to a parseable line *)
  let v =
    Json.Obj
      [
        ("nan", Json.Float Float.nan);
        ("inf", Json.Float Float.infinity);
        ("ninf", Json.Float Float.neg_infinity);
        ("ok", Json.Float 2.5);
      ]
  in
  let s = Json.to_string v in
  Alcotest.(check bool) "no bare nan token" false (contains s "nan,");
  (match Json.of_string s with
   | Ok (Json.Obj [ ("nan", Json.Null); ("inf", Json.Null); ("ninf", Json.Null); ("ok", Json.Float f) ]) ->
     Alcotest.(check (float 0.0)) "finite float survives" 2.5 f
   | Ok other -> Alcotest.failf "unexpected round-trip shape: %s" (Json.to_string other)
   | Error e -> Alcotest.failf "non-finite floats made the line unparseable: %s" e)

let test_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.0)) "p50" 50.0 (Metrics.percentile xs 0.5);
  Alcotest.(check (float 0.0)) "p99" 99.0 (Metrics.percentile xs 0.99);
  Alcotest.(check (float 0.0)) "p100" 100.0 (Metrics.percentile xs 1.0);
  Alcotest.(check (float 0.0)) "empty" 0.0 (Metrics.percentile [||] 0.5);
  Alcotest.(check (float 0.0)) "singleton" 7.0 (Metrics.percentile [| 7.0 |] 0.9)

let suite =
  [
    ("jobs determinism: stats and findings", `Slow, test_jobs_determinism_stats);
    ("jobs determinism: triage tables", `Slow, test_jobs_determinism_triage);
    ("campaign metrics sanity", `Slow, test_metrics_sanity);
    shard_disjoint_cover;
    shard_owner_consistent;
    ("shard: invalid arguments", `Quick, test_shard_invalid);
    ("engine: toy parallel run", `Quick, test_engine_toy_parallel);
    ("engine: innermost stage blamed", `Quick, test_engine_innermost_stage);
    ("engine: resume from torn journal", `Quick, test_engine_toy_resume);
    ("engine: journal header mismatch", `Quick, test_engine_journal_mismatch);
    ("engine: crashes are checkpointed", `Quick, test_engine_crash_checkpointed);
    ("engine: hostile journal skipped and counted", `Quick, test_engine_journal_robustness);
    ("fault isolation: injected crash quarantined", `Slow, test_fault_isolation);
    ("checkpoint/resume: corpus campaign", `Slow, test_corpus_resume);
    ("checkpoint/resume: unknown record kind skipped", `Slow, test_corpus_journal_unknown_kind);
    ("checkpoint/resume: oracle record kinds skipped", `Slow, test_corpus_journal_oracle_kinds);
    ("value campaign: jobs determinism", `Slow, test_value_campaign_determinism);
    ("stats: merge equals collect", `Slow, test_stats_merge_equals_collect);
    json_roundtrip;
    ("json: escaping and truncation", `Quick, test_json_escaping);
    ("json: non-finite floats serialize as null", `Quick, test_json_nonfinite);
    ("metrics: nearest-rank percentile", `Quick, test_percentile);
  ]
