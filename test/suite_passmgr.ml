(* The pass-manager subsystem: analysis caching and invalidation, fixpoint
   early exit, stage-trace marker attribution, and the differential against
   the pre-pass-manager reference pipeline. *)

open Helpers
module Pm = C.Passmgr
module Pi = Dce_opt.Passinfo
module Mi = Dce_opt.Meminfo

(* ---- custom passes used to exercise invalidation ---- *)

(* deletes every store: changes Meminfo's stored/const-store facts *)
let strip_stores_pass =
  Pm.make_pass (Pi.v "strip-stores") (fun _mgr prog ->
      Ir.map_func
        (fun fn ->
          {
            fn with
            Ir.fn_blocks =
              Ir.Imap.map
                (fun b ->
                  {
                    b with
                    Ir.b_instrs =
                      List.filter
                        (function Ir.Store _ -> false | _ -> true)
                        b.Ir.b_instrs;
                  })
                fn.Ir.fn_blocks;
          })
        prog)

(* rewrites every conditional branch to its true edge: changes predecessors
   and dominators without touching the block set *)
let force_jmp_pass =
  Pm.make_pass (Pi.v "force-jmp") (fun _mgr prog ->
      Ir.map_func
        (fun fn ->
          {
            fn with
            Ir.fn_blocks =
              Ir.Imap.map
                (fun b ->
                  {
                    b with
                    Ir.b_term =
                      (match b.Ir.b_term with
                       | Ir.Br (_, lt, _) -> Ir.Jmp lt
                       | t -> t);
                  })
                fn.Ir.fn_blocks;
          })
        prog)

(* ---- analysis cache ---- *)

let test_meminfo_counters () =
  Pm.reset_counters ();
  let prog = lower "static int g = 1; int main(void) { g = 2; return g; }" in
  let mgr = Pm.create prog in
  ignore (Pm.meminfo mgr);
  ignore (Pm.meminfo mgr);
  let c = Pm.counters () in
  Alcotest.(check int) "one computation" 1 c.Pm.meminfo_misses;
  Alcotest.(check int) "one cache hit" 1 c.Pm.meminfo_hits

let test_meminfo_invalidation () =
  let prog = lower "static int g = 1; int main(void) { g = 2; return g; }" in
  let mgr = Pm.create prog in
  let mi0 = Pm.meminfo mgr in
  Alcotest.(check bool) "g is stored before the pass" true (Mi.ever_stored mi0 "g");
  let prog', record = Pm.run_pass mgr strip_stores_pass prog in
  Alcotest.(check bool) "the pass changed the program" true record.Pm.sr_changed;
  (* the cached Meminfo must be indistinguishable from a fresh analysis of
     the post-pass program — stale facts must never be observable *)
  let cached = Pm.meminfo mgr in
  let fresh = Mi.analyze prog' in
  Alcotest.(check bool) "ever_stored agrees with fresh analysis"
    (Mi.ever_stored fresh "g") (Mi.ever_stored cached "g");
  Alcotest.(check bool) "stores_only_init_consts agrees with fresh analysis"
    (Mi.stores_only_init_consts fresh "g")
    (Mi.stores_only_init_consts cached "g");
  Alcotest.(check bool) "escaped agrees with fresh analysis" (Mi.escaped fresh "g")
    (Mi.escaped cached "g");
  Alcotest.(check bool) "the store deletion is visible" false (Mi.ever_stored cached "g")

let test_cfg_invalidation () =
  let prog =
    lower "int main(void) { int x = ext(0); if (x) { use(1); } else { use(2); } return 0; }"
  in
  let mgr = Pm.create prog in
  let main0 = List.find (fun f -> f.Ir.fn_name = "main") prog.Ir.prog_funcs in
  ignore (Pm.predecessors mgr main0);
  ignore (Pm.dominators mgr main0);
  let prog', record = Pm.run_pass mgr force_jmp_pass prog in
  Alcotest.(check bool) "the pass changed the program" true record.Pm.sr_changed;
  let main' = List.find (fun f -> f.Ir.fn_name = "main") prog'.Ir.prog_funcs in
  let cached_preds = Pm.predecessors mgr main' in
  let fresh_preds = Dce_ir.Cfg.predecessors main' in
  let cached_dom = Pm.dominators mgr main' in
  let fresh_dom = Dce_ir.Dom.compute main' in
  Ir.Imap.iter
    (fun l _ ->
      Alcotest.(check (list int))
        (Printf.sprintf "predecessors of block %d agree with fresh analysis" l)
        (Option.value ~default:[] (Ir.Imap.find_opt l fresh_preds))
        (Option.value ~default:[] (Ir.Imap.find_opt l cached_preds));
      Alcotest.(check (option int))
        (Printf.sprintf "idom of block %d agrees with fresh analysis" l)
        (Dce_ir.Dom.idom fresh_dom l)
        (Dce_ir.Dom.idom cached_dom l))
    main'.Ir.fn_blocks

let test_pipeline_cache_hits () =
  Pm.reset_counters ();
  let src =
    {|
int a;
int b[2];
int main(void) {
  int i = 0;
  int s = 0;
  for (i = 0; i < 8; i = i + 1) { s = s + b[i % 2]; }
  if (&a == &b[1]) { DCEMarker0(); }
  return s;
}
|}
  in
  ignore (surviving "gcc" C.Level.O3 src);
  let c = Pm.counters () in
  Alcotest.(check bool) "meminfo served from cache at least once" true (c.Pm.meminfo_hits > 0);
  Alcotest.(check bool) "meminfo computed at least once" true (c.Pm.meminfo_misses > 0);
  let rate = Pm.hit_rate c in
  Alcotest.(check bool) "hit rate strictly between 0 and 1" true (rate > 0.0 && rate < 1.0)

(* ---- fixpoint driving ---- *)

let test_fixpoint_early_exit () =
  let feats = C.Compiler.features C.Gcc_sim.compiler C.Level.O3 in
  Alcotest.(check bool) "several rounds are scheduled" true (feats.C.Features.opt_rounds >= 2);
  (* nothing to optimize: every round after the first is provably a no-op *)
  let prog = lower "int main(void) { return 0; }" in
  let _, trace = C.Pipeline.run_traced feats prog in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "stage %s did not run a second round" r.Pm.sr_label)
        true (r.Pm.sr_round <= 1))
    trace;
  Alcotest.(check bool) "early exit shortens the executed schedule" true
    (List.length trace < List.length (C.Pipeline.stage_names feats))

let test_stage_names_static () =
  (* the advertised schedule is the static expansion and ignores early exit *)
  List.iter
    (fun level ->
      let feats = C.Compiler.features C.Gcc_sim.compiler level in
      let names = C.Pipeline.stage_names feats in
      Alcotest.(check bool)
        (Printf.sprintf "schedule at %s is non-empty" (C.Level.to_string level))
        true (names <> []);
      Alcotest.(check (list string))
        (Printf.sprintf "schedule at %s is deterministic" (C.Level.to_string level))
        names
        (C.Pipeline.stage_names feats))
    C.Level.all

(* ---- stage-trace marker attribution ---- *)

let listing3 =
  {|
char a;
char b[2];
int main(void) {
  char *c = &a;
  char *d = &b[1];
  if (c == d) { DCEMarker0(); }
  return 0;
}
|}

let listing4 =
  {|
static int a = 0;
int main(void) {
  if (a) { DCEMarker0(); }
  a = 0;
  return 0;
}
|}

let check_attribution ~src ~eliminator ~misser =
  let prog = parse src in
  let surv_e, trace_e =
    C.Compiler.surviving_markers_traced (compiler_named eliminator) C.Level.O3 prog
  in
  Alcotest.(check bool)
    (eliminator ^ " eliminates marker 0")
    false (List.mem 0 surv_e);
  (match Pm.markers_eliminated_by trace_e ~marker:0 with
   | Some r ->
     Alcotest.(check bool)
       (Printf.sprintf "%s records the elimination in a changed stage (%s)" eliminator
          r.Pm.sr_label)
       true r.Pm.sr_changed
   | None -> Alcotest.failf "%s trace does not attribute marker 0" eliminator);
  let surv_m, trace_m =
    C.Compiler.surviving_markers_traced (compiler_named misser) C.Level.O3 prog
  in
  Alcotest.(check bool) (misser ^ " keeps marker 0") true (List.mem 0 surv_m);
  Alcotest.(check bool)
    (misser ^ " trace attributes no elimination")
    true
    (Pm.markers_eliminated_by trace_m ~marker:0 = None)

let test_attribution_listing3 () =
  check_attribution ~src:listing3 ~eliminator:"gcc" ~misser:"llvm"

let test_attribution_listing4 () =
  check_attribution ~src:listing4 ~eliminator:"llvm" ~misser:"gcc"

let test_diagnose_guilty_stage () =
  (* llvm misses Listing 3's marker; its fully-fixed pipeline (addr_cmp
     upgraded post-HEAD) folds the compare in sccp, so the trace walk-back
     must name sccp, not the simplify-cfg pass that swept the block *)
  let instr =
    Core.Instrument.program
      (parse
         {|
int a;
int b[2];
int main(void) {
  if (&a == &b[1]) { use(1); }
  return 0;
}
|})
  in
  let d = Core.Diagnose.run C.Llvm_sim.compiler C.Level.O3 instr ~marker:0 in
  Alcotest.(check (option string)) "guilty stage is sccp" (Some "sccp")
    d.Core.Diagnose.guilty_stage;
  Alcotest.(check string) "repair signature unchanged" "addr-cmp:full"
    (Core.Diagnose.signature d);
  Alcotest.(check (option string)) "sccp maps to the constant-propagation component"
    (Some "Constant Propagation")
    (Core.Diagnose.component_of_stage "sccp")

(* ---- differential against the reference pipeline, validated smoke ---- *)

let test_matches_reference_corpus () =
  let corpus = Dce_smith.Smith.generate_corpus ~seed:20220228 ~count:50 in
  List.iter
    (fun (raw, _kinds) ->
      let ir = Dce_ir.Lower.program (Core.Instrument.program raw) in
      List.iter
        (fun compiler ->
          List.iter
            (fun level ->
              let feats = C.Compiler.features compiler level in
              let fast = C.Pipeline.run feats ir in
              let slow = C.Pipeline.run_reference feats ir in
              if fast <> slow then
                Alcotest.failf "cached fixpoint pipeline diverges from reference: %s %s"
                  compiler.C.Compiler.name (C.Level.to_string level))
            C.Level.all)
        [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ])
    corpus

let test_validated_smoke_corpus () =
  (* every stage output of every compile re-checked by the IR validator *)
  let corpus = Dce_smith.Smith.generate_corpus ~seed:424242 ~count:25 in
  List.iter
    (fun (raw, _kinds) ->
      let instr = Core.Instrument.program raw in
      List.iter
        (fun compiler ->
          List.iter
            (fun level -> ignore (C.Compiler.compile compiler ~validate:true level instr))
            C.Level.all)
        [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ])
    corpus

let suite =
  [
    ("meminfo: hit/miss counters", `Quick, test_meminfo_counters);
    ("meminfo: invalidated after a mutating pass", `Quick, test_meminfo_invalidation);
    ("cfg/dom: invalidated after a terminator rewrite", `Quick, test_cfg_invalidation);
    ("pipeline: analysis cache hits during a compile", `Quick, test_pipeline_cache_hits);
    ("fixpoint: early exit on already-optimal IR", `Quick, test_fixpoint_early_exit);
    ("schedule: stage names are the static expansion", `Quick, test_stage_names_static);
    ("trace: listing-3 attribution (gcc eliminates)", `Quick, test_attribution_listing3);
    ("trace: listing-4 attribution (llvm eliminates)", `Quick, test_attribution_listing4);
    ("diagnose: guilty stage from the fixed pipeline", `Quick, test_diagnose_guilty_stage);
    ("differential: run = run_reference on 50 programs", `Slow, test_matches_reference_corpus);
    ("smoke: validated pipeline over 25 programs", `Slow, test_validated_smoke_corpus);
  ]
