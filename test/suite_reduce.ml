(* Tests for the fast reduction engine: staged predicates, the
   content-addressed caches, and the deterministic parallel search.

   The load-bearing properties:
   - the engine at any [jobs]/[cache] setting is field-for-field identical
     to the pre-engine sequential reducer ([Reduce.reduce_reference]);
   - stages short-circuit (later stages are entered strictly less often);
   - the verdict and compile caches are observably transparent;
   - [Ast.hash_program] is a function of program structure (stable under
     pretty-print → reparse, sensitive to edits). *)

open Helpers
module C = Dce_compiler
module Core = Dce_core
module Ir = Dce_ir.Ir
module Ast = Dce_minic.Ast
module R = Dce_reduce

let gcc_o3 = { Core.Differential.compiler = C.Gcc_sim.compiler; level = C.Level.O3; version = None }
let llvm_o3 = { Core.Differential.compiler = C.Llvm_sim.compiler; level = C.Level.O3; version = None }

let listing4 =
  lazy
    (Core.Instrument.program
       (parse
          {|
static int a = 0;
static int noise1 = 3;
int noise2[4] = {1, 2, 3, 4};
static int pad(int x) { return x * noise1; }
int main(void) {
  int t = pad(2);
  use(t);
  if (noise2[1] > 100) { use(7); }
  if (a) { use(1); }
  use(noise2[2]);
  a = 0;
  return 0;
}
|}))

let diff_marker prog =
  let g = Core.Differential.surviving gcc_o3 prog in
  let l = Core.Differential.surviving llvm_o3 prog in
  Ir.Iset.choose (Ir.Iset.diff g l)

let staged_predicate ?(compile_cache = true) marker =
  R.Predicate.marker_diff ~compile_cache ~keep_missed_by:gcc_o3 ~eliminated_by:llvm_o3 ~marker ()

let check_same_result name (a : R.Engine.result) (b : R.Engine.result) =
  Alcotest.(check string)
    (name ^ ": program")
    (Dce_minic.Pretty.program_to_string a.R.Engine.program)
    (Dce_minic.Pretty.program_to_string b.R.Engine.program);
  Alcotest.(check int) (name ^ ": tests_run") a.R.Engine.tests_run b.R.Engine.tests_run;
  Alcotest.(check int) (name ^ ": rounds") a.R.Engine.rounds b.R.Engine.rounds;
  Alcotest.(check int) (name ^ ": initial_size") a.R.Engine.initial_size b.R.Engine.initial_size;
  Alcotest.(check int) (name ^ ": final_size") a.R.Engine.final_size b.R.Engine.final_size

(* ---- engine vs the pre-engine sequential reducer ---- *)

(* a cheap opaque predicate every generated program supports: the chosen
   marker stays dead under ground truth *)
let dead_marker_predicate marker p =
  match Core.Ground_truth.compute p with
  | Core.Ground_truth.Valid t -> Ir.Iset.mem marker t.Core.Ground_truth.dead
  | Core.Ground_truth.Rejected _ -> false

let test_engine_matches_reference () =
  let compared = ref 0 in
  for seed = 1 to 25 do
    let prog = Core.Instrument.program (smith_program seed) in
    match Core.Ground_truth.compute prog with
    | Core.Ground_truth.Rejected _ -> ()
    | Core.Ground_truth.Valid truth -> (
      match Ir.Iset.choose_opt truth.Core.Ground_truth.dead with
      | None -> ()
      | Some marker ->
        let predicate = dead_marker_predicate marker in
        let a = R.Reduce.reduce ~max_tests:60 ~predicate prog in
        let b = R.Reduce.reduce_reference ~max_tests:60 ~predicate prog in
        incr compared;
        Alcotest.(check string)
          (Printf.sprintf "seed %d: program" seed)
          (Dce_minic.Pretty.program_to_string b.R.Reduce.program)
          (Dce_minic.Pretty.program_to_string a.R.Reduce.program);
        Alcotest.(check int)
          (Printf.sprintf "seed %d: tests_run" seed)
          b.R.Reduce.tests_run a.R.Reduce.tests_run;
        Alcotest.(check int) (Printf.sprintf "seed %d: rounds" seed) b.R.Reduce.rounds a.R.Reduce.rounds;
        Alcotest.(check int)
          (Printf.sprintf "seed %d: final_size" seed)
          b.R.Reduce.final_size a.R.Reduce.final_size)
  done;
  Alcotest.(check bool) "corpus not vacuous" true (!compared >= 20)

(* ---- determinism across jobs and cache settings ---- *)

let test_jobs_deterministic () =
  let prog = Lazy.force listing4 in
  let marker = diff_marker prog in
  let run jobs = R.Engine.reduce ~max_tests:1500 ~jobs ~predicate:(staged_predicate marker) prog in
  let r1 = run 1 in
  check_same_result "jobs 4" r1 (run 4);
  check_same_result "jobs 3" r1 (run 3);
  (* and both agree with the pre-engine reducer under the opaque predicate *)
  let old_pred =
    R.Reduce.marker_diff_predicate ~keep_missed_by:gcc_o3 ~eliminated_by:llvm_o3 ~marker
  in
  let old_r = R.Reduce.reduce_reference ~max_tests:1500 ~predicate:old_pred prog in
  Alcotest.(check string) "matches reference reducer"
    (Dce_minic.Pretty.program_to_string old_r.R.Reduce.program)
    (Dce_minic.Pretty.program_to_string r1.R.Engine.program);
  Alcotest.(check int) "same charge as reference" old_r.R.Reduce.tests_run r1.R.Engine.tests_run;
  Alcotest.(check int) "same rounds as reference" old_r.R.Reduce.rounds r1.R.Engine.rounds

let test_cache_transparent () =
  let prog = Lazy.force listing4 in
  let marker = diff_marker prog in
  let with_cache =
    R.Engine.reduce ~max_tests:1500 ~cache:true ~predicate:(staged_predicate marker) prog
  in
  let without =
    R.Engine.reduce ~max_tests:1500 ~cache:false
      ~predicate:(staged_predicate ~compile_cache:false marker)
      prog
  in
  check_same_result "cache on/off" with_cache without;
  (* cache off: every charged test plus the initial check executes *)
  Alcotest.(check int) "uncached runs = charged + initial"
    (without.R.Engine.tests_run + 1)
    without.R.Engine.stats.R.Engine.s_predicate_runs;
  (* cache on: duplicate candidates (chunk grids re-align) are memoized *)
  let s = with_cache.R.Engine.stats in
  Alcotest.(check bool) "verdict cache hits" true (s.R.Engine.s_cache.C.Compile_cache.hits > 0);
  Alcotest.(check bool) "fewer evaluations than charges" true
    (s.R.Engine.s_predicate_runs < s.R.Engine.s_charged)

(* ---- staging: cheap stages reject first, pipelines are saved ---- *)

let test_stage_short_circuit () =
  let entered_2nd = ref 0 in
  let p =
    R.Predicate.v
      [
        {
          R.Predicate.st_name = "gate";
          st_cost = R.Predicate.Free;
          st_run = (fun prog -> if prog.Ast.p_funcs = [] then Some prog else None);
        };
        {
          R.Predicate.st_name = "expensive";
          st_cost = R.Predicate.Pipeline;
          st_run =
            (fun prog ->
              incr entered_2nd;
              Some prog);
        };
      ]
  in
  let prog = parse "int main(void) { return 0; }" in
  (match R.Predicate.run p prog with
  | R.Predicate.Rejected 0, samples ->
    Alcotest.(check int) "only the gate sampled" 1 (List.length samples)
  | _ -> Alcotest.fail "expected rejection at stage 0");
  Alcotest.(check int) "second stage never entered" 0 !entered_2nd;
  let counts = R.Predicate.counts p in
  Alcotest.(check int) "gate entered once" 1 (List.nth counts 0).R.Predicate.sc_entered;
  Alcotest.(check int) "gate rejected once" 1 (List.nth counts 0).R.Predicate.sc_rejected;
  Alcotest.(check int) "expensive never entered" 0 (List.nth counts 1).R.Predicate.sc_entered

let test_staging_saves_pipelines () =
  let prog = Lazy.force listing4 in
  let marker = diff_marker prog in
  let r = R.Engine.reduce ~max_tests:1500 ~predicate:(staged_predicate marker) prog in
  let s = r.R.Engine.stats in
  (* entered counts are monotone along the stage chain *)
  let entered = List.map (fun sc -> sc.R.Predicate.sc_entered) s.R.Engine.s_stages in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a >= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "stage entries monotone" true (monotone entered);
  Alcotest.(check bool) "free stages rejected something" true
    ((List.nth s.R.Engine.s_stages 0).R.Predicate.sc_rejected > 0
    || (List.nth s.R.Engine.s_stages 1).R.Predicate.sc_rejected > 0);
  (* the acceptance bar: at least 3x fewer pipelines than the naive
     2-pipelines-per-test predicate (measured 5.1x on this case) *)
  Alcotest.(check bool) "3x fewer pipeline executions" true
    (s.R.Engine.s_pipelines_naive >= 3 * max 1 s.R.Engine.s_pipelines_run)

let test_compile_cache_transparent () =
  C.Compiler.clear_caches ();
  List.iter
    (fun seed ->
      let prog = Core.Instrument.program (smith_program seed) in
      List.iter
        (fun (comp, level) ->
          let plain = C.Compiler.surviving_markers comp level prog in
          let cached = C.Compiler.surviving_markers_cached comp level prog in
          let again = C.Compiler.surviving_markers_cached comp level prog in
          Alcotest.(check (list int)) "cached = plain" plain cached;
          Alcotest.(check (list int)) "memo hit = plain" plain again)
        [ (C.Gcc_sim.compiler, C.Level.O3); (C.Llvm_sim.compiler, C.Level.O2) ])
    [ 11; 12; 13 ];
  let cs = C.Compiler.cache_stats () in
  Alcotest.(check bool) "whole-compile memo hits" true
    (cs.C.Compiler.cs_surviving.C.Compile_cache.hits > 0);
  Alcotest.(check bool) "no unresolved collisions" true
    (cs.C.Compiler.cs_surviving.C.Compile_cache.entries
    <= cs.C.Compiler.cs_surviving.C.Compile_cache.misses)

let test_compile_cache_collision_checked () =
  (* force every key into one bucket: structural equality must still keep
     the entries apart *)
  let t = C.Compile_cache.create ~hash:(fun _ -> 42) ~equal:( = ) () in
  Alcotest.(check int) "first" 1 (C.Compile_cache.find_or_add t "a" (fun () -> 1));
  Alcotest.(check int) "second distinct key" 2 (C.Compile_cache.find_or_add t "b" (fun () -> 2));
  Alcotest.(check int) "first again" 1 (C.Compile_cache.find_or_add t "a" (fun () -> 99));
  let c = C.Compile_cache.counters t in
  Alcotest.(check int) "entries" 2 c.C.Compile_cache.entries;
  Alcotest.(check int) "hits" 1 c.C.Compile_cache.hits;
  Alcotest.(check bool) "collision detected" true (c.C.Compile_cache.collisions > 0)

(* ---- fault isolation ---- *)

let test_candidate_crash_quarantined () =
  let prog = Lazy.force listing4 in
  let nfuncs = List.length prog.Ast.p_funcs in
  let p =
    R.Predicate.v
      [
        {
          R.Predicate.st_name = "typecheck";
          st_cost = R.Predicate.Free;
          st_run =
            (fun p ->
              match Dce_minic.Typecheck.check p with Ok n -> Some n | Error _ -> None);
        };
        {
          R.Predicate.st_name = "fragile";
          st_cost = R.Predicate.Execution;
          st_run =
            (fun p ->
              if List.length p.Ast.p_funcs < nfuncs then failwith "boom" else Some p);
        };
      ]
  in
  let r = R.Engine.reduce ~max_tests:300 ~jobs:2 ~predicate:p prog in
  Alcotest.(check bool) "crashes recorded" true (r.R.Engine.stats.R.Engine.s_crashes <> []);
  List.iter
    (fun (c : R.Engine.crash) ->
      Alcotest.(check string) "attributed to the fragile stage" "fragile" c.R.Engine.cr_stage)
    r.R.Engine.stats.R.Engine.s_crashes;
  Alcotest.(check int) "crashing edits rejected, functions kept" nfuncs
    (List.length r.R.Engine.program.Ast.p_funcs)

(* ---- journal warm-start ---- *)

let test_journal_resume () =
  let prog = Lazy.force listing4 in
  let marker = diff_marker prog in
  let path = Filename.temp_file "dce_reduce_test" ".jsonl" in
  Sys.remove path;
  let first =
    R.Engine.reduce ~max_tests:1500 ~journal:path ~predicate:(staged_predicate marker) prog
  in
  let second =
    R.Engine.reduce ~max_tests:1500 ~journal:path ~predicate:(staged_predicate marker) prog
  in
  Sys.remove path;
  check_same_result "resumed run" first second;
  Alcotest.(check bool) "verdicts restored" true (second.R.Engine.stats.R.Engine.s_resumed > 0);
  Alcotest.(check int) "nothing re-evaluated" 0 second.R.Engine.stats.R.Engine.s_predicate_runs

(* ---- structural hashing ---- *)

let properties =
  let gen_seed = QCheck2.Gen.(int_range 1 10000000) in
  [
    qtest ~count:30 "hash_program stable under pretty-print -> reparse" gen_seed (fun seed ->
        let prog = Core.Instrument.program (smith_program seed) in
        let reparsed =
          Dce_minic.Parser.parse_program (Dce_minic.Pretty.program_to_string prog)
        in
        Ast.hash_program prog = Ast.hash_program reparsed);
    qtest ~count:30 "hash_program sensitive to edits" gen_seed (fun seed ->
        let prog = Core.Instrument.program (smith_program seed) in
        match R.Edits.candidates prog with
        | [] -> true
        | c :: _ ->
          let edited = Lazy.force c in
          Ast.hash_program prog <> Ast.hash_program edited);
  ]

let suite =
  [
    ("engine matches reference over seeded corpus", `Slow, test_engine_matches_reference);
    ("jobs-N result byte-identical to jobs-1", `Slow, test_jobs_deterministic);
    ("verdict cache is observably transparent", `Slow, test_cache_transparent);
    ("stages short-circuit (no entry past a rejection)", `Quick, test_stage_short_circuit);
    ("staged predicate saves 3x pipelines", `Slow, test_staging_saves_pipelines);
    ("compile cache returns identical results", `Slow, test_compile_cache_transparent);
    ("compile cache survives forced hash collisions", `Quick, test_compile_cache_collision_checked);
    ("crashing candidate is quarantined, not fatal", `Quick, test_candidate_crash_quarantined);
    ("journal warm-starts an identical reduction", `Slow, test_journal_resume);
  ]
  @ properties
