let () =
  Alcotest.run "dce-lens"
    [
      (* fork-heavy suites first: serve forks daemons and fabric forks
         worker processes, and OCaml forbids Unix.fork once any domain has
         ever been created in the process — which suite_fabric's final
         test and the later --jobs > 1 suites do.  serve must precede
         fabric because fabric's last test deliberately poisons fork. *)
      ("serve", Suite_serve.suite);
      ("fabric", Suite_fabric.suite);
      ("support", Suite_support.suite);
      ("minic", Suite_minic.suite);
      ("ir", Suite_ir.suite);
      ("interp", Suite_interp.suite);
      ("exec", Suite_exec.suite);
      ("passes", Suite_passes.suite);
      ("loop-passes", Suite_loop_passes.suite);
      ("compiler", Suite_compiler.suite);
      ("passmgr", Suite_passmgr.suite);
      ("core", Suite_core.suite);
      ("backend", Suite_backend.suite);
      ("smith", Suite_smith.suite);
      ("tools", Suite_tools.suite);
      ("reduce", Suite_reduce.suite);
      ("campaign", Suite_campaign.suite);
      ("oracles", Suite_oracles.suite);
      ("supervision", Suite_supervision.suite);
      ("bisect", Suite_bisect.suite);
      ("repair", Suite_repair.suite);
      ("extension", Suite_extension.suite);
      ("properties", Suite_properties.suite);
      ("edge-cases", Suite_edge_cases.suite);
    ]
