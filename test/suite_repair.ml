(* The closed loop (repair search → A/B verification → diff):

   - the seeded known-fixable regression: gcc-sim misses marker 34 of corpus
     program 1 at -O3; the search must find the guilty-component single-flag
     fix and the verification campaign must accept it with a clean diff
   - rejection: a candidate that fixes the repro but regresses other cases
     must be rejected by its campaign diff, and the loop must fall through
     to the next passing candidate
   - determinism: the repair record is byte-identical across jobs 1/3/4
   - campaign-diff: self-diff of a run is the empty verdict
   - Run_store: the persisted report round-trips through JSON

   Runs after the fabric suite (probe evaluation spawns domains at jobs>1);
   the workers>1 byte-identity of the verification campaign lives in
   suite_fabric, before the process is poisoned for fork. *)

module C = Dce_compiler
module Core = Dce_core
module Smith = Dce_smith.Smith
module Campaign = Dce_campaign
module Json = Campaign.Json
module Run_store = Campaign.Run_store
module Run_diff = Campaign.Run_diff
module Repair = Dce_repair

(* corpus program 1 of the default campaign seed: gcc-sim -O3 keeps dead
   marker 34 (the hunt's first primary finding) *)
let repro_seed = 20220228
let repro_marker = 34

let repro () =
  let seeds = Smith.corpus_seeds ~seed:repro_seed ~count:2 in
  let prog, _ = Smith.generate (Smith.default_config (List.nth seeds 1)) in
  Core.Instrument.program prog

let smoke_count = 6

let test_search_finds_guilty_fix () =
  let prog = repro () in
  (* precondition: the marker really is missed at HEAD *)
  Alcotest.(check bool) "repro misses the marker" true
    (List.mem repro_marker
       (C.Compiler.surviving_markers C.Gcc_sim.compiler C.Level.O3 prog));
  let s = Repair.Search.search C.Gcc_sim.compiler C.Level.O3 prog ~marker:repro_marker in
  Alcotest.(check bool) "guilty stage attributed" true (s.Repair.Search.so_guilty_stage <> None);
  Alcotest.(check bool) "a single-flag fix exists" true (s.Repair.Search.so_passing <> []);
  Alcotest.(check int) "singles sufficed: no pair probes" 0 s.Repair.Search.so_pairs;
  Alcotest.(check int) "probe count = singles" s.Repair.Search.so_singles
    s.Repair.Search.so_probes;
  (* the fix really eliminates the marker, and only edits levels >= O3 *)
  let edits = List.hd s.Repair.Search.so_passing in
  let patched = Repair.Edit.patched C.Gcc_sim.compiler ~level:C.Level.O3 edits in
  Alcotest.(check bool) "patched compiler eliminates the marker" false
    (List.mem repro_marker (C.Compiler.surviving_markers patched C.Level.O3 prog));
  Alcotest.(check bool) "weaker levels untouched" true
    (C.Compiler.features patched C.Level.O2 = C.Compiler.features C.Gcc_sim.compiler C.Level.O2);
  Alcotest.(check bool) "patched name embeds the edit signature" true
    (Helpers.contains patched.C.Compiler.name (Repair.Edit.signature edits))

let test_repair_found_and_verified () =
  let prog = repro () in
  let r =
    Repair.Driver.run ~seed:repro_seed ~count:smoke_count C.Gcc_sim.compiler C.Level.O3 prog
      ~marker:repro_marker
  in
  (match r.Repair.Driver.rr_accepted with
   | None -> Alcotest.fail "no repair accepted for the seeded fixable regression"
   | Some (edits, verdict) ->
     Alcotest.(check int) "minimal: a single edit" 1 (List.length edits);
     Alcotest.(check bool) "verdict is clean" false (Run_diff.has_regressions verdict);
     Alcotest.(check bool) "the repro's miss is among the fixed" true
       (List.exists
          (fun (m : Run_store.miss) ->
            m.Run_store.m_marker = repro_marker && m.Run_store.m_level = C.Level.O3
            && m.Run_store.m_compiler = "gcc-sim")
          verdict.Run_diff.d_fixed_misses);
     Alcotest.(check (list pass)) "no new misses" [] verdict.Run_diff.d_new_misses);
  Alcotest.(check bool) "first tried candidate was clean" true
    (match r.Repair.Driver.rr_tried with cv :: _ -> cv.Repair.Driver.cv_clean | [] -> false)

let test_destructive_candidate_rejected () =
  let prog = repro () in
  (* a saboteur "fix": strip every -O3 feature.  It trivially eliminates
     nothing and regresses everything, so its campaign diff must reject it
     and the loop must fall through to the search's own candidate. *)
  let sabotage =
    {
      Core.Diagnose.repair_name = "sabotage:strip-O3";
      repair_component = "pipeline";
      edit = (fun _ -> C.Features.nothing);
    }
  in
  let r =
    Repair.Driver.run ~seed:repro_seed ~count:smoke_count ~candidates:[ [ sabotage ] ]
      C.Gcc_sim.compiler C.Level.O3 prog ~marker:repro_marker
  in
  (match r.Repair.Driver.rr_tried with
   | first :: second :: _ ->
     Alcotest.(check bool) "saboteur rejected" false first.Repair.Driver.cv_clean;
     Alcotest.(check bool) "saboteur verdict has regressions" true
       (Run_diff.has_regressions first.Repair.Driver.cv_verdict);
     Alcotest.(check bool) "saboteur causes new misses" true
       (first.Repair.Driver.cv_verdict.Run_diff.d_new_misses <> []);
     Alcotest.(check bool) "next candidate accepted" true second.Repair.Driver.cv_clean
   | _ -> Alcotest.fail "expected the saboteur and one fallback candidate to be verified");
  match r.Repair.Driver.rr_accepted with
  | Some (edits, _) ->
    Alcotest.(check bool) "accepted repair is not the saboteur" true
      (List.for_all (fun e -> e.Core.Diagnose.repair_name <> "sabotage:strip-O3") edits)
  | None -> Alcotest.fail "fallback candidate should have been accepted"

let record_string r = Json.to_string (Repair.Driver.record_to_json r)

let test_repair_record_jobs_deterministic () =
  let prog = repro () in
  let run jobs =
    Repair.Driver.run ~jobs ~seed:repro_seed ~count:smoke_count C.Gcc_sim.compiler C.Level.O3
      prog ~marker:repro_marker
  in
  let r1 = record_string (run 1) in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "repair record identical at jobs=%d" jobs)
        r1
        (record_string (run jobs)))
    [ 3; 4 ]

let test_campaign_diff_self_is_empty () =
  let v =
    Repair.Verify.campaign ~name:"self" ~seed:repro_seed ~count:4
      ~compilers:[ (C.Gcc_sim.compiler, "gcc-sim"); (C.Llvm_sim.compiler, "llvm-sim") ]
      ()
  in
  let verdict = Run_diff.diff v.Repair.Verify.vy_report v.Repair.Verify.vy_report in
  Alcotest.(check bool) "self-diff is empty" true (Run_diff.is_empty verdict);
  Alcotest.(check bool) "self-diff is clean" false (Run_diff.has_regressions verdict);
  Alcotest.(check bool) "render says identical" true
    (Helpers.contains (Run_diff.render verdict) "identical");
  (* and the verification campaign itself found real work to diff *)
  Alcotest.(check bool) "report has rows" true (v.Repair.Verify.vy_report.Run_store.r_misses <> [])

let test_run_store_report_round_trip () =
  let report =
    {
      Run_store.r_campaign = "rt";
      r_seed = 7;
      r_count = 3;
      r_compilers = [ "gcc-sim"; "llvm-sim" ];
      r_misses =
        [
          { Run_store.m_case = 2; m_compiler = "llvm-sim"; m_level = C.Level.O3; m_marker = 9 };
          { Run_store.m_case = 0; m_compiler = "gcc-sim"; m_level = C.Level.O1; m_marker = 4 };
        ];
      r_sizes =
        [ { Run_store.z_case = 1; z_compiler = "gcc-sim"; z_level = C.Level.Os; z_size = 33 } ];
      r_inversions =
        [
          {
            Run_store.v_case = 1;
            v_compiler = "gcc-sim";
            v_marker = 5;
            v_low = C.Level.O1;
            v_high = C.Level.O3;
          };
        ];
      r_rejected = [ 2; 2; 0 ];
      r_quarantined = [];
    }
  in
  let round = Run_store.report_of_json (Run_store.report_to_json report) in
  Alcotest.(check bool) "round trip faithful" true (round = report);
  (* the canonical form (what `write` persists) is idempotent and survives
     the codec too *)
  let sorted = Run_store.sort_report report in
  Alcotest.(check bool) "sorted round trip = sorted form" true
    (Run_store.report_of_json (Run_store.report_to_json sorted) = sorted);
  Alcotest.(check bool) "sort idempotent" true (Run_store.sort_report sorted = sorted);
  Alcotest.(check (list int)) "rejected deduplicated" [ 0; 2 ] sorted.Run_store.r_rejected;
  (match sorted.Run_store.r_misses with
   | [ a; b ] -> Alcotest.(check bool) "misses ordered by case" true (a.Run_store.m_case < b.Run_store.m_case)
   | _ -> Alcotest.fail "expected both misses back")

let test_run_id_stable_and_distinct () =
  let id = Run_store.run_id ~campaign:"hunt" ~seed:1 ~count:10 [ "gcc-sim" ] in
  Alcotest.(check string) "pure function of the parameters" id
    (Run_store.run_id ~campaign:"hunt" ~seed:1 ~count:10 [ "gcc-sim" ]);
  Alcotest.(check bool) "id shape" true (String.length id = 19 && String.sub id 0 4 = "run-");
  List.iter
    (fun other -> Alcotest.(check bool) "parameter change changes the id" true (other <> id))
    [
      Run_store.run_id ~campaign:"hunt" ~seed:2 ~count:10 [ "gcc-sim" ];
      Run_store.run_id ~campaign:"hunt" ~seed:1 ~count:11 [ "gcc-sim" ];
      Run_store.run_id ~campaign:"hunt2" ~seed:1 ~count:10 [ "gcc-sim" ];
      Run_store.run_id ~campaign:"hunt" ~seed:1 ~count:10 [ "llvm-sim" ];
    ]

let suite =
  [
    ("repair: search finds the guilty fix", `Quick, test_search_finds_guilty_fix);
    ("repair: found and verified on the seeded regression", `Slow, test_repair_found_and_verified);
    ("repair: destructive candidate rejected", `Slow, test_destructive_candidate_rejected);
    ("repair: record byte-identical across jobs", `Slow, test_repair_record_jobs_deterministic);
    ("campaign-diff: self-diff is the empty verdict", `Quick, test_campaign_diff_self_is_empty);
    ("run-store: report JSON round trip", `Quick, test_run_store_report_round_trip);
    ("run-store: run ids stable and distinct", `Quick, test_run_id_stable_and_distinct);
  ]
