(* The bytecode executor: VM-vs-interpreter differential soak, trap/fuel/
   Guard parity, and allocator sanity.  The interpreter is the oracle; the
   VM must produce bit-identical results — same outcome (including trap
   messages), same event list, same marker and block sets, same step
   count, same final-global checksums. *)

open Helpers
module Ir = Dce_ir.Ir
module I = Dce_interp.Interp
module E = Dce_exec
module Core = Dce_core
module Guard = Dce_support.Guard

let pp_outcome = function
  | I.Finished n -> Printf.sprintf "finished %d" n
  | I.Trap m -> Printf.sprintf "trap: %s" m
  | I.Out_of_fuel -> "out of fuel"

let explain_diff (a : I.result) (b : I.result) =
  if a.I.outcome <> b.I.outcome then
    Printf.sprintf "outcome: interp=%s vm=%s" (pp_outcome a.I.outcome) (pp_outcome b.I.outcome)
  else if a.I.events <> b.I.events then "event lists differ"
  else if not (Ir.Iset.equal a.I.executed_markers b.I.executed_markers) then "marker sets differ"
  else if not (Ir.Bset.equal a.I.executed_blocks b.I.executed_blocks) then "block sets differ"
  else if a.I.steps <> b.I.steps then
    Printf.sprintf "steps: interp=%d vm=%d" a.I.steps b.I.steps
  else if a.I.final_globals <> b.I.final_globals then "final globals differ"
  else "equal"

let check_parity ?fuel ~what ir =
  let ri = E.Exec.run ~backend:E.Exec.Interp ?fuel ir in
  let rv = E.Exec.run ~backend:E.Exec.Vm ?fuel ir in
  if not (E.Exec.results_equal ri rv) then
    Alcotest.failf "%s: VM diverges from interpreter (%s)" what (explain_diff ri rv)

(* ---- differential soak over the corpus ---- *)

let soak_seeds = List.init 220 (fun i -> 1000 + (137 * i))

let test_soak_lowered () =
  List.iter
    (fun seed ->
      let prog = Core.Instrument.program (smith_program seed) in
      let ir = Dce_ir.Lower.program prog in
      check_parity ~fuel:300_000 ~what:(Printf.sprintf "seed %d (lowered)" seed) ir)
    soak_seeds

let test_soak_ssa () =
  (* SSA form exercises parallel phis *)
  List.iter
    (fun seed ->
      let prog = Core.Instrument.program (smith_program seed) in
      let ir = Dce_ir.Ssa.construct_program (Dce_ir.Lower.program prog) in
      check_parity ~fuel:300_000 ~what:(Printf.sprintf "seed %d (ssa)" seed) ir)
    (List.filteri (fun i _ -> i mod 2 = 0) soak_seeds)

let test_soak_optimized () =
  (* full pipelines: phis, unrolled loops, inlined calls, threaded jumps *)
  let levels = [ Dce_compiler.Level.O2; Dce_compiler.Level.O3 ] in
  let compilers = [ Dce_compiler.Gcc_sim.compiler; Dce_compiler.Llvm_sim.compiler ] in
  List.iter
    (fun seed ->
      let prog = Core.Instrument.program (smith_program seed) in
      List.iter
        (fun comp ->
          List.iter
            (fun level ->
              let ir = Dce_compiler.Compiler.compile_ir comp level prog in
              check_parity ~fuel:300_000
                ~what:
                  (Printf.sprintf "seed %d (%s %s)" seed comp.Dce_compiler.Compiler.name
                     (Dce_compiler.Level.to_string level))
                ir)
            levels)
        compilers)
    (List.filteri (fun i _ -> i mod 5 = 0) soak_seeds)

let test_soak_default_fuel () =
  (* a handful at the real default fuel, so the 2M boundary is exercised *)
  List.iter
    (fun seed ->
      let prog = Core.Instrument.program (smith_program seed) in
      check_parity ~what:(Printf.sprintf "seed %d (default fuel)" seed)
        (Dce_ir.Lower.program prog))
    [ 1; 2; 3; 42; 77; 12345 ]

(* ---- source-level trap and fuel parity ---- *)

let trap_sources =
  [
    ("oob read", "int b[2]; int main(void) { int i = 5; return b[i]; }");
    ("oob write", "int b[2]; int main(void) { int i = 5; b[i] = 1; return 0; }");
    ("null deref", "int *p; int main(void) { return *p; }");
    ( "dangling frame",
      "int *p; static void f(void) { int x = 3; p = &x; } int main(void) { f(); return *p; }" );
    ("call depth", "static int f(int n) { return f(n + 1); } int main(void) { return f(0); }");
    ("ptr as index", "int a; int b[2]; int main(void) { return b[(int)&a]; }");
  ]

let test_trap_parity () =
  List.iter (fun (name, src) -> check_parity ~what:name (lower src)) trap_sources

let test_fuel_parity () =
  let ir = lower "int main(void) { int i = 0; while (1) { i = i + 1; } return i; }" in
  List.iter
    (fun fuel ->
      let ri = E.Exec.run ~backend:E.Exec.Interp ~fuel ir in
      let rv = E.Exec.run ~backend:E.Exec.Vm ~fuel ir in
      Alcotest.(check bool)
        (Printf.sprintf "fuel %d parity" fuel)
        true
        (E.Exec.results_equal ri rv);
      Alcotest.(check bool)
        (Printf.sprintf "fuel %d exhausts" fuel)
        true
        (ri.I.outcome = I.Out_of_fuel))
    [ 1; 2; 100; 1000; 4096 ]

(* ---- hand-built IR: edge cases lowering can't produce ---- *)

let main_fn ir =
  match Ir.find_func ir "main" with Some f -> f | None -> Alcotest.fail "no main"

let test_missing_block_parity () =
  let ir = lower "int main(void) { return 0; }" in
  let fn = main_fn ir in
  let broken =
    Ir.update_func ir
      {
        fn with
        Ir.fn_blocks =
          Ir.Imap.map (fun b -> { b with Ir.b_term = Ir.Jmp 4242 }) fn.Ir.fn_blocks;
      }
  in
  check_parity ~what:"jump to missing block" broken;
  (match (E.Exec.run ~backend:E.Exec.Vm broken).I.outcome with
   | I.Trap m -> Alcotest.(check string) "message" "jump to missing block L4242 in main" m
   | o -> Alcotest.failf "expected trap, got %s" (pp_outcome o));
  (* the missing target still counts as an entered block, like the oracle *)
  Alcotest.(check bool) "missing block recorded" true
    (Ir.Bset.mem ("main", 4242) (E.Exec.run ~backend:E.Exec.Vm broken).I.executed_blocks)

let test_undefined_register_parity () =
  let ir = lower "int main(void) { return 0; }" in
  let fn = main_fn ir in
  let broken =
    Ir.update_func ir
      {
        fn with
        Ir.fn_blocks =
          Ir.Imap.map (fun b -> { b with Ir.b_term = Ir.Ret (Some (Ir.Reg 424242)) }) fn.Ir.fn_blocks;
      }
  in
  (* step counts may differ by design here (the VM checks the sentinel
     before the op's tick), so compare outcome only *)
  let ri = E.Exec.run ~backend:E.Exec.Interp broken in
  let rv = E.Exec.run ~backend:E.Exec.Vm broken in
  Alcotest.(check bool) "both trap on undefined register" true
    (ri.I.outcome = rv.I.outcome);
  match rv.I.outcome with
  | I.Trap m -> Alcotest.(check string) "message" "read of undefined register %424242 in main" m
  | o -> Alcotest.failf "expected trap, got %s" (pp_outcome o)

let test_switch_on_pointer_parity () =
  let ir = lower "int a; int main(void) { int *p = &a; return 0; }" in
  let fn = main_fn ir in
  (* rewrite: switch on the pointer register; find the Def of the Addr *)
  let ptr_reg = ref None in
  Ir.iter_instrs
    (fun _ i ->
      match i with Ir.Def (v, Ir.Addr _) -> ptr_reg := Some v | _ -> ())
    fn;
  match !ptr_reg with
  | None -> Alcotest.fail "no address definition found"
  | Some v ->
    let entry = Ir.block fn fn.Ir.fn_entry in
    let broken =
      Ir.update_func ir
        {
          fn with
          Ir.fn_blocks =
            Ir.Imap.add fn.Ir.fn_entry
              { entry with Ir.b_term = Ir.Switch (Ir.Reg v, [ (0, fn.Ir.fn_entry) ], fn.Ir.fn_entry) }
              fn.Ir.fn_blocks;
        }
    in
    check_parity ~what:"switch on pointer" broken

let test_arity_mismatch_parity () =
  let ir = lower "static int f(int a, int b) { return a + b; } int main(void) { return f(1, 2); }" in
  let fn = main_fn ir in
  let broken =
    Ir.update_func ir
      {
        fn with
        Ir.fn_blocks =
          Ir.Imap.map
            (fun b ->
              {
                b with
                Ir.b_instrs =
                  List.map
                    (function
                      | Ir.Call (res, "f", _ :: rest) -> Ir.Call (res, "f", rest)
                      | i -> i)
                    b.Ir.b_instrs;
              })
            fn.Ir.fn_blocks;
      }
  in
  check_parity ~what:"arity mismatch" broken

let test_phi_edge_cases_parity () =
  (* phi in entry block *)
  let ir = lower "int main(void) { return 0; }" in
  let fn = main_fn ir in
  let with_entry_phi =
    let entry = Ir.block fn fn.Ir.fn_entry in
    Ir.update_func ir
      {
        fn with
        Ir.fn_blocks =
          Ir.Imap.add fn.Ir.fn_entry
            {
              entry with
              Ir.b_instrs =
                Ir.Def (fn.Ir.fn_next_var, Ir.Phi [ (0, Ir.Const 1) ]) :: entry.Ir.b_instrs;
            }
            fn.Ir.fn_blocks;
        Ir.fn_next_var = fn.Ir.fn_next_var + 1;
      }
  in
  check_parity ~what:"phi in entry block" with_entry_phi;
  (* phi lacking an argument for the actual predecessor *)
  let ir2 = lower "int main(void) { int x = 0; if (x) { x = 1; } return x; }" in
  let fn2 = main_fn (Ir.map_func Dce_ir.Ssa.construct ir2) in
  let ssa_ir = Ir.update_func ir2 fn2 in
  let broken_phi =
    Ir.update_func ssa_ir
      {
        fn2 with
        Ir.fn_blocks =
          Ir.Imap.map
            (fun b ->
              {
                b with
                Ir.b_instrs =
                  List.map
                    (function
                      | Ir.Def (v, Ir.Phi ((_ :: _ :: _) as args)) ->
                        Ir.Def (v, Ir.Phi [ List.hd args ])
                      | i -> i)
                    b.Ir.b_instrs;
              })
            fn2.Ir.fn_blocks;
      }
  in
  check_parity ~what:"phi missing predecessor arg" broken_phi

let test_no_main_parity () =
  let ir = lower "static int f(void) { return 1; } int f2(void) { return 2; }" in
  check_parity ~what:"no main" ir

(* ---- Guard step-budget parity ---- *)

let test_guard_budget_parity () =
  let ir = lower "int main(void) { int i = 0; while (1) { i = i + 1; } return i; }" in
  let trip backend =
    try
      Guard.with_guard
        (Guard.create ~steps:40 ())
        (fun () -> ignore (E.Exec.run ~backend ir));
      Alcotest.fail "expected Budget_exceeded"
    with Guard.Budget_exceeded { site; steps; _ } -> (site, steps)
  in
  let si, ni = trip E.Exec.Interp in
  let sv, nv = trip E.Exec.Vm in
  Alcotest.(check string) "interp site" "interp" si;
  Alcotest.(check string) "vm site" "vm" sv;
  (* both backends poll at the same execution steps, so the budget trips
     after the same number of polls *)
  Alcotest.(check int) "polls served" ni nv

(* ---- allocator sanity ---- *)

let test_allocation_sanity () =
  List.iter
    (fun seed ->
      let prog = Core.Instrument.program (smith_program seed) in
      let cp = E.Bc_compile.program (Dce_ir.Lower.program prog) in
      Array.iter
        (fun cf ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d %s: slots within bound" seed cf.E.Bc.cf_name)
            true
            (cf.E.Bc.cf_nregs <= cf.E.Bc.cf_nvars))
        cp.E.Bc.cp_funcs)
    (List.filteri (fun i _ -> i mod 10 = 0) soak_seeds);
  (* disjoint lifetimes share a slot: the allocator must beat one-slot-
     per-register on a straight line of short-lived temporaries *)
  let ir =
    lower
      {|
int g;
int main(void) {
  int a = 1; g = a;
  int b = 2; g = b;
  int c = 3; g = c;
  int d = 4; g = d;
  return g;
}
|}
  in
  let cp = E.Bc_compile.program ir in
  let cf = cp.E.Bc.cp_funcs.(0) in
  Alcotest.(check bool) "coalesces disjoint lifetimes" true (cf.E.Bc.cf_nregs < cf.E.Bc.cf_nvars)

(* ---- campaign reports are backend-independent ---- *)

let test_campaign_report_parity () =
  (* the rendered report tables must be byte-identical whichever backend
     computed ground truth, at any worker count *)
  let module Stats = Dce_report.Stats in
  let tables c =
    let st = Dce_campaign.Corpus.stats c in
    (Stats.table1 st, Stats.table2 st, Stats.attribution_table st)
  in
  let seed = 20220228 and count = 12 in
  let reference =
    tables (Dce_campaign.Corpus.run ~exec:E.Exec.Interp ~jobs:1 ~seed ~count ())
  in
  List.iter
    (fun jobs ->
      let t1, t2, attr =
        tables (Dce_campaign.Corpus.run ~exec:E.Exec.Vm ~jobs ~seed ~count ())
      in
      let r1, r2, rattr = reference in
      Alcotest.(check string) (Printf.sprintf "table1 (vm, jobs=%d)" jobs) r1 t1;
      Alcotest.(check string) (Printf.sprintf "table2 (vm, jobs=%d)" jobs) r2 t2;
      Alcotest.(check string) (Printf.sprintf "attribution (vm, jobs=%d)" jobs) rattr attr)
    [ 1; 3; 4 ]

let test_disasm_smoke () =
  let cp = E.Bc_compile.program (lower "int main(void) { return 40 + 2; }") in
  let text = E.Bc.disasm cp.E.Bc.cp_funcs.(0) in
  Alcotest.(check bool) "mentions entry" true (contains text "enter L");
  Alcotest.(check bool) "mentions ret" true (contains text "ret")

let suite =
  [
    Alcotest.test_case "soak: lowered corpus" `Slow test_soak_lowered;
    Alcotest.test_case "soak: ssa corpus" `Slow test_soak_ssa;
    Alcotest.test_case "soak: optimized corpus" `Slow test_soak_optimized;
    Alcotest.test_case "soak: default fuel" `Slow test_soak_default_fuel;
    Alcotest.test_case "trap parity" `Quick test_trap_parity;
    Alcotest.test_case "fuel parity" `Quick test_fuel_parity;
    Alcotest.test_case "missing block" `Quick test_missing_block_parity;
    Alcotest.test_case "undefined register" `Quick test_undefined_register_parity;
    Alcotest.test_case "switch on pointer" `Quick test_switch_on_pointer_parity;
    Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch_parity;
    Alcotest.test_case "phi edge cases" `Quick test_phi_edge_cases_parity;
    Alcotest.test_case "no main" `Quick test_no_main_parity;
    Alcotest.test_case "guard budget parity" `Quick test_guard_budget_parity;
    Alcotest.test_case "allocation sanity" `Quick test_allocation_sanity;
    Alcotest.test_case "campaign report parity" `Slow test_campaign_report_parity;
    Alcotest.test_case "disassembler" `Quick test_disasm_smoke;
  ]
