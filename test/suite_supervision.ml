(* The supervision layer: cooperative guards, retry policy, crash bundles,
   journal locking, and the chaos soak.

   The soak is the tentpole invariant: under an arbitrary deterministic
   fault plan, every non-faulted case produces results identical to the
   fault-free campaign, every injected fault is either quarantined with the
   right classification or recovered by retry, and a torn journal resumes
   under chaos to the same report — at every worker count. *)

open Helpers
module Campaign = Dce_campaign
module Engine = Campaign.Engine
module Guard = Dce_support.Guard
module Chaos = Campaign.Chaos
module Bundle = Campaign.Bundle
module Journal = Campaign.Journal
module Metrics = Campaign.Metrics

(* ------------------------------------------------------------------ *)
(* Guard unit behaviour                                                *)
(* ------------------------------------------------------------------ *)

let test_guard_step_budget () =
  let g = Guard.create ~steps:5 () in
  let trip () =
    Guard.with_guard g (fun () ->
        for _ = 1 to 10 do
          Guard.poll ~site:"unit"
        done)
  in
  (match trip () with
   | () -> Alcotest.fail "expected Budget_exceeded"
   | exception Guard.Budget_exceeded { site; steps; _ } ->
     Alcotest.(check string) "site" "unit" site;
     (* the poll that finds the budget spent is the one that trips *)
     Alcotest.(check int) "tripped just past the budget" 6 steps);
  (* the guard is ambient only inside with_guard *)
  Alcotest.(check bool) "no ambient guard outside" false (Guard.active ())

let test_guard_deadline_trips () =
  (* a deadline already in the past must trip on the first clock check *)
  let g = Guard.create ~deadline:(-1.0) () in
  match Guard.with_guard g (fun () -> Guard.poll ~site:"dl") with
  | () -> Alcotest.fail "an expired deadline must trip on the first poll"
  | exception Guard.Budget_exceeded { site; _ } -> Alcotest.(check string) "site" "dl" site

let test_guard_unlimited_noop () =
  (* both bounds absent: create returns the unlimited sentinel and polling
     is free; a million polls must neither raise nor activate *)
  let g = Guard.create () in
  Guard.with_guard g (fun () ->
      Alcotest.(check bool) "unlimited is not active" false (Guard.active ());
      for _ = 1 to 1_000_000 do
        Guard.poll ~site:"free"
      done);
  Guard.poll ~site:"no-guard-at-all"

let test_guard_nesting_restored () =
  let outer = Guard.create ~steps:1_000 () in
  let inner = Guard.create ~steps:2 () in
  Guard.with_guard outer (fun () ->
      (match Guard.with_guard inner (fun () ->
               Guard.poll ~site:"a";
               Guard.poll ~site:"b";
               Guard.poll ~site:"c")
       with
       | () -> Alcotest.fail "inner budget must trip"
       | exception Guard.Budget_exceeded _ -> ());
      (* the outer guard must be back in force after the inner one died *)
      Alcotest.(check bool) "outer restored" true (Guard.active ());
      Guard.poll ~site:"outer-still-fine")

(* ------------------------------------------------------------------ *)
(* poll points: interpreter and pass manager                           *)
(* ------------------------------------------------------------------ *)

let test_guard_cuts_interp () =
  (* a long-running loop polls every 256 steps; a small step budget must cut
     it long before the interpreter's own fuel would *)
  let prog =
    lower
      "int main(void) { int i = 0; int s = 0; while (i < 1000000) { s = s + i; i = i + 1; } \
       return s; }"
  in
  let g = Guard.create ~steps:10 () in
  match Guard.with_guard g (fun () -> I.run ~fuel:100_000_000 prog) with
  | _ -> Alcotest.fail "expected the guard to cut the interpreter"
  | exception Guard.Budget_exceeded { site; _ } -> Alcotest.(check string) "site" "interp" site

let test_guard_cuts_passmgr () =
  (* every executed pass polls on entry; a tiny budget dies inside the
     pipeline, naming a pass as the site *)
  let prog = Core.Instrument.program (smith_program 99) in
  let g = Guard.create ~steps:3 () in
  match
    Guard.with_guard g (fun () ->
        C.Compiler.surviving_markers (compiler_named "gcc") C.Level.O3 prog)
  with
  | _ -> Alcotest.fail "expected the guard to cut the pipeline"
  | exception Guard.Budget_exceeded { site; steps; _ } ->
    Alcotest.(check bool) "site is a pass label" true (site <> "");
    Alcotest.(check int) "tripped just past the budget" 4 steps

(* ------------------------------------------------------------------ *)
(* engine: timeout classification, retries, backtraces                 *)
(* ------------------------------------------------------------------ *)

let test_engine_timeout_quarantine () =
  (* deterministic flavour: a chaos hang against a step budget *)
  let plan = [ { Chaos.inj_case = 2; inj_stage = "spin"; inj_fault = Chaos.Hang } ] in
  let r =
    Engine.run ~step_budget:5_000 ~chaos:plan ~jobs:1 ~count:4 (fun ctx i ->
        Engine.stage ctx "spin" (fun () -> i * 2))
  in
  (match r.Engine.quarantine with
   | [ q ] ->
     Alcotest.(check int) "case" 2 q.Engine.q_case;
     Alcotest.(check string) "stage" "spin" q.Engine.q_stage;
     Alcotest.(check bool) "classified timeout" true (q.Engine.q_kind = Engine.Timeout);
     Alcotest.(check bool) "error names the budget" true (contains q.Engine.q_error "budget")
   | qs -> Alcotest.failf "expected 1 timeout, got %d quarantined" (List.length qs));
  Alcotest.(check int) "metrics count the timeout" 1 r.Engine.metrics.Metrics.timeouts;
  Alcotest.(check int) "no plain crashes" 0 r.Engine.metrics.Metrics.crashed;
  (* the other cases were unaffected *)
  Alcotest.(check bool) "case 1 done" true (r.Engine.outcomes.(1) = Engine.Done 2)

let test_engine_wall_clock_deadline () =
  (* the non-deterministic flavour: a real wall-clock deadline against an
     unbounded spin (kept tiny so the test costs ~0.2s) *)
  let plan = [ { Chaos.inj_case = 0; inj_stage = "spin"; inj_fault = Chaos.Hang } ] in
  let r =
    Engine.run ~deadline:0.2 ~chaos:plan ~jobs:1 ~count:1 (fun ctx _ ->
        Engine.stage ctx "spin" (fun () -> ()))
  in
  match r.Engine.quarantine with
  | [ q ] -> Alcotest.(check bool) "timeout" true (q.Engine.q_kind = Engine.Timeout)
  | qs -> Alcotest.failf "expected 1 timeout, got %d" (List.length qs)

let test_engine_retry_recovers () =
  let plan = [ { Chaos.inj_case = 1; inj_stage = "work"; inj_fault = Chaos.Transient 2 } ] in
  let r =
    Engine.run ~retries:2 ~chaos:plan ~jobs:1 ~count:3 (fun ctx i ->
        Engine.stage ctx "work" (fun () -> i + 10))
  in
  Alcotest.(check (list int)) "no quarantine" []
    (List.map (fun q -> q.Engine.q_case) r.Engine.quarantine);
  Alcotest.(check bool) "case 1 recovered" true (r.Engine.outcomes.(1) = Engine.Done 11);
  Alcotest.(check int) "two retry attempts counted" 2 r.Engine.metrics.Metrics.retries;
  Alcotest.(check int) "one case recovered" 1 r.Engine.metrics.Metrics.recovered;
  let text = Metrics.to_string r.Engine.metrics in
  Alcotest.(check bool) "summary mentions recovery" true (contains text "recovered")

let test_engine_retry_exhausted () =
  let plan = [ { Chaos.inj_case = 0; inj_stage = "work"; inj_fault = Chaos.Transient 5 } ] in
  let r =
    Engine.run ~retries:2 ~chaos:plan ~jobs:1 ~count:1 (fun ctx _ ->
        Engine.stage ctx "work" (fun () -> ()))
  in
  match r.Engine.quarantine with
  | [ q ] ->
    Alcotest.(check int) "retries recorded on the quarantine" 2 q.Engine.q_retries;
    Alcotest.(check bool) "still transient-kind crash" true (q.Engine.q_kind = Engine.Crash);
    Alcotest.(check int) "both retry attempts counted" 2 r.Engine.metrics.Metrics.retries;
    Alcotest.(check int) "nothing recovered" 0 r.Engine.metrics.Metrics.recovered
  | qs -> Alcotest.failf "expected 1 quarantined, got %d" (List.length qs)

let test_engine_backtrace_captured () =
  let r =
    Engine.run ~jobs:1 ~count:1 (fun ctx _ ->
        Engine.stage ctx "boom" (fun () -> failwith "kaboom"))
  in
  match r.Engine.quarantine with
  | [ q ] ->
    Alcotest.(check bool) "backtrace non-empty" true (String.length q.Engine.q_backtrace > 0);
    Alcotest.(check bool) "backtrace mentions a frame" true
      (contains q.Engine.q_backtrace "Raised")
  | qs -> Alcotest.failf "expected 1 quarantined, got %d" (List.length qs)

(* ------------------------------------------------------------------ *)
(* journal locking                                                     *)
(* ------------------------------------------------------------------ *)

let test_journal_double_open_fails () =
  let path = Filename.temp_file "dce_lock_test" ".jsonl" in
  let header = { Journal.h_campaign = "lock-test"; h_seed = 1; h_count = 2 } in
  let j1 = Journal.open_append ~path header in
  (match Journal.open_append ~path header with
   | _ -> Alcotest.fail "second open of a live journal must fail"
   | exception Failure msg ->
     Alcotest.(check bool) "message names the lock" true (contains msg "locked");
     Alcotest.(check bool) "message names the path" true (contains msg path));
  (* the refused opener must not have damaged the live journal *)
  Journal.append j1 (Campaign.Json.Obj [ ("case", Campaign.Json.Int 0) ]);
  Journal.close j1;
  (* after close the lock is released and reopening resumes normally *)
  let j2 = Journal.open_append ~path header in
  Journal.close j2;
  (match Journal.load ~path with
   | Some (h, cases, 0) ->
     Alcotest.(check bool) "header survived" true (h = header);
     Alcotest.(check int) "case written before the failed open survived" 1 (List.length cases)
   | _ -> Alcotest.fail "journal unreadable after lock round-trip");
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* chaos plan parsing                                                  *)
(* ------------------------------------------------------------------ *)

let test_chaos_plan_parse () =
  (match Chaos.of_string "crash@1,transient2@3:differential,hang@5:ground-truth,corrupt@7" with
   | Error e -> Alcotest.failf "parse failed: %s" e
   | Ok plan ->
     Alcotest.(check int) "entries" 4 (List.length plan);
     Alcotest.(check bool) "default stage is generate" true
       (List.exists
          (fun i -> i.Chaos.inj_case = 1 && i.Chaos.inj_stage = "generate"
                    && i.Chaos.inj_fault = Chaos.Crash)
          plan);
     Alcotest.(check bool) "transient count parsed" true
       (List.exists
          (fun i -> i.Chaos.inj_case = 3 && i.Chaos.inj_stage = "differential"
                    && i.Chaos.inj_fault = Chaos.Transient 2)
          plan);
     Alcotest.(check bool) "corrupt defaults to the dce pass" true
       (List.exists
          (fun i -> i.Chaos.inj_case = 7 && i.Chaos.inj_stage = "dce"
                    && i.Chaos.inj_fault = Chaos.Corrupt_ir)
          plan);
     (* canonical round trip *)
     Alcotest.(check bool) "to_string/of_string round-trips" true
       (Chaos.of_string (Chaos.to_string plan) = Ok plan));
  (match Chaos.of_string "explode@3" with
   | Error e -> Alcotest.(check bool) "unknown kind reported" true (contains e "explode")
   | Ok _ -> Alcotest.fail "unknown fault kind must be rejected");
  match Chaos.of_string "crash@x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-integer case must be rejected"

let test_chaos_hang_refused_without_guard () =
  let plan = [ { Chaos.inj_case = 0; inj_stage = "spin"; inj_fault = Chaos.Hang } ] in
  (* no deadline and no step budget: arming a hang must refuse loudly rather
     than stall the worker forever *)
  let r = Engine.run ~chaos:plan ~jobs:1 ~count:1 (fun ctx _ -> Engine.stage ctx "spin" Fun.id) in
  match r.Engine.quarantine with
  | [ q ] ->
    Alcotest.(check bool) "refusal names the guard" true
      (contains q.Engine.q_error "without an active guard")
  | qs -> Alcotest.failf "expected 1 quarantined, got %d" (List.length qs)

(* ------------------------------------------------------------------ *)
(* checked mode: the Passmgr IR hook blames the guilty pass            *)
(* ------------------------------------------------------------------ *)

let test_checked_mode_blames_pass () =
  let prog = Core.Instrument.program (smith_program 7) in
  let plan = [ { Chaos.inj_case = 0; inj_stage = "dce"; inj_fault = Chaos.Corrupt_ir } ] in
  Chaos.arm plan ~case:0 ~attempt:0;
  Fun.protect ~finally:Chaos.disarm (fun () ->
      match
        C.Compiler.surviving_markers ~validate:true (compiler_named "gcc") C.Level.O2 prog
      with
      | _ -> Alcotest.fail "corrupted IR must fail validation"
      | exception C.Passmgr.Ir_invalid { pass; errors } ->
        Alcotest.(check string) "guilty pass" "dce" pass;
        Alcotest.(check bool) "validator diagnostics present" true (errors <> []));
  (* without checked mode the same corruption is NOT attributed: it either
     flows through or blows up arbitrarily far from the guilty pass (sccp
     trips an array bound on the bogus register) — why Corpus forces
     checked for corrupt plans *)
  Chaos.arm plan ~case:0 ~attempt:0;
  Fun.protect ~finally:Chaos.disarm (fun () ->
      match C.Compiler.surviving_markers (compiler_named "gcc") C.Level.O2 prog with
      | _ -> ()
      | exception C.Passmgr.Ir_invalid _ ->
        Alcotest.fail "unchecked run must not classify the fault"
      | exception _ -> ())

(* ------------------------------------------------------------------ *)
(* crash bundles                                                       *)
(* ------------------------------------------------------------------ *)

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Dce_support.Fsx.mkdir_p d;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let test_bundle_roundtrip () =
  let dir = temp_dir "dce_bundle_test" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let q =
        {
          Engine.q_case = 42;
          q_stage = "differential";
          q_error = "some pass exploded";
          q_kind = Engine.Ir_invalid;
          q_backtrace = "Raised at Somewhere.deep in file \"x.ml\"";
          q_retries = 1;
        }
      in
      let b =
        Bundle.of_quarantined ~campaign:"hunt" ~seed:12345
          ~source:"int main(void) { return 0; }" q
      in
      let written = Bundle.write ~dir b in
      Alcotest.(check string) "case dir layout" (Bundle.case_dir ~dir 42) written;
      match Bundle.load written with
      | None -> Alcotest.fail "bundle did not load back"
      | Some b' ->
        Alcotest.(check bool) "round-trips" true (b = b');
        Alcotest.(check bool) "summary mentions the kind" true
          (contains (Bundle.to_string b') "ir-invalid"))

let test_bundles_written_by_campaign () =
  let dir = temp_dir "dce_bundle_campaign" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let c =
        Campaign.Corpus.run ~jobs:2 ~seed:4242 ~count:6 ~inject_crash:[ 1; 4 ] ~bundle_dir:dir ()
      in
      Alcotest.(check int) "two quarantined" 2 (List.length c.Campaign.Corpus.c_quarantine);
      List.iter
        (fun case ->
          match Bundle.load (Bundle.case_dir ~dir case) with
          | None -> Alcotest.failf "no bundle for case %d" case
          | Some b ->
            Alcotest.(check int) "bundle seed is the case seed"
              c.Campaign.Corpus.c_seeds.(case) b.Bundle.b_seed;
            Alcotest.(check string) "guilty stage" "generate" b.Bundle.b_stage;
            (match b.Bundle.b_source with
             | None -> Alcotest.fail "bundle has no source"
             | Some src ->
               (* the repro must stand alone: parse and typecheck it *)
               ignore (parse src)))
        [ 1; 4 ])

(* ------------------------------------------------------------------ *)
(* the chaos soak                                                      *)
(* ------------------------------------------------------------------ *)

(* one fault of every kind, aimed at distinct cases of the shared 50-case
   corpus (Suite_campaign.seq is the fault-free baseline) *)
let soak_spec =
  "crash@3,hang@7:ground-truth,transient@11:differential,slow@13:instrument,corrupt@17"

let soak_plan =
  match Chaos.of_string soak_spec with Ok p -> p | Error e -> failwith e

let soak_faulted = [ 3; 7; 17 ]  (* quarantined; 11 recovers, 13 only slows *)

let run_soak ?journal jobs =
  Campaign.Corpus.run ?journal ~jobs ~seed:Suite_campaign.corpus_seed
    ~count:Suite_campaign.corpus_count ~chaos:soak_plan ~step_budget:2_000_000 ~retries:2 ()

let soak1 = lazy (run_soak 1)

(* Per-case projection of everything result-like in an analysis outcome:
   surviving/missed/primary-missed per config, and the per-stage marker
   attribution.  Deliberately excludes stage wall times ([sr_time]) — they
   are measurements, not results, and differ between any two runs. *)
let project (c : Campaign.Corpus.t) =
  Array.to_list c.Campaign.Corpus.c_cases
  |> List.mapi (fun i case ->
         match case with
         | Campaign.Corpus.Quarantined q ->
           (i, `Quarantined (q.Engine.q_kind, q.Engine.q_stage))
         | Campaign.Corpus.Case (Core.Analysis.Rejected r, _) -> (i, `Rejected r)
         | Campaign.Corpus.Case (Core.Analysis.Analyzed a, _) ->
           ( i,
             `Analyzed
               (List.map
                  (fun (pc : Core.Analysis.per_config) ->
                    ( pc.Core.Analysis.cfg_compiler,
                      pc.Core.Analysis.cfg_level,
                      pc.Core.Analysis.surviving,
                      pc.Core.Analysis.missed,
                      pc.Core.Analysis.primary_missed,
                      C.Passmgr.attribution pc.Core.Analysis.cfg_trace ))
                  a.Core.Analysis.configs) ))

let test_soak_fault_accounting () =
  let c = Lazy.force soak1 in
  let quarantined =
    List.map (fun q -> (q.Engine.q_case, q.Engine.q_kind, q.Engine.q_stage))
      c.Campaign.Corpus.c_quarantine
  in
  Alcotest.(check bool) "every fault quarantined with its classification" true
    (quarantined
     = [
         (3, Engine.Crash, "generate");
         (7, Engine.Timeout, "ground-truth");
         (17, Engine.Ir_invalid, "differential");
       ]);
  let m = c.Campaign.Corpus.c_metrics in
  Alcotest.(check int) "crash counted" 1 m.Metrics.crashed;
  Alcotest.(check int) "timeout counted" 1 m.Metrics.timeouts;
  Alcotest.(check int) "ir-invalid counted" 1 m.Metrics.ir_invalid;
  Alcotest.(check int) "one retry, one recovery" 1 m.Metrics.retries;
  Alcotest.(check int) "recovered" 1 m.Metrics.recovered;
  (* crash + hang + transient + slow + corrupt each fired exactly once *)
  Alcotest.(check int) "all five faults fired" 5 m.Metrics.chaos_fired;
  let text = Metrics.to_string m in
  Alcotest.(check bool) "summary says timed out" true (contains text "timed out");
  Alcotest.(check bool) "summary says recovered" true (contains text "recovered")

let test_soak_non_faulted_identical () =
  let base = project (Lazy.force Suite_campaign.seq) in
  let soak = project (Lazy.force soak1) in
  List.iter2
    (fun (i, b) (i', s) ->
      Alcotest.(check int) "case order" i i';
      if not (List.mem i soak_faulted) then
        Alcotest.(check bool)
          (Printf.sprintf "case %d identical to fault-free run" i)
          true (b = s))
    base soak;
  (* the recovered and the slowed case are among the identical ones — state
     it explicitly, they are the interesting survivors *)
  Alcotest.(check bool) "recovered case 11 matches baseline" true
    (List.assoc 11 base = List.assoc 11 soak);
  Alcotest.(check bool) "slowed case 13 matches baseline" true
    (List.assoc 13 base = List.assoc 13 soak)

let test_soak_jobs_independent () =
  let p1 = project (Lazy.force soak1) in
  let p3 = project (run_soak 3) in
  let p4 = project (run_soak 4) in
  Alcotest.(check bool) "jobs=3 identical" true (p1 = p3);
  Alcotest.(check bool) "jobs=4 identical" true (p1 = p4)

let test_soak_resume_under_chaos () =
  let path = Filename.temp_file "dce_soak_journal" ".jsonl" in
  Sys.remove path;
  let full = run_soak ~journal:path 1 in
  (* tear the journal after 20 records the way a killed campaign would *)
  Suite_campaign.truncate_journal path ~cases:20;
  let resumed = run_soak ~journal:path 3 in
  Alcotest.(check int) "twenty cases restored" 20 resumed.Campaign.Corpus.c_resumed;
  Alcotest.(check bool) "projection identical after resume" true
    (project full = project resumed);
  Alcotest.(check bool) "quarantine identical after resume" true
    (List.map (fun q -> (q.Engine.q_case, q.Engine.q_kind))
       full.Campaign.Corpus.c_quarantine
    = List.map (fun q -> (q.Engine.q_case, q.Engine.q_kind))
        resumed.Campaign.Corpus.c_quarantine);
  (* resuming the chaos journal without the plan is a parameter mismatch *)
  (match
     Campaign.Corpus.run ~journal:path ~jobs:1 ~seed:Suite_campaign.corpus_seed
       ~count:Suite_campaign.corpus_count ()
   with
  | _ -> Alcotest.fail "resume without the chaos plan must be rejected"
  | exception Failure msg ->
    Alcotest.(check bool) "mismatch names the chaos campaign" true (contains msg "chaos"));
  Sys.remove path

let suite =
  [
    Alcotest.test_case "guard: step budget trips at the bound" `Quick test_guard_step_budget;
    Alcotest.test_case "guard: zero deadline trips on first poll" `Quick
      test_guard_deadline_trips;
    Alcotest.test_case "guard: unlimited polling is free" `Quick test_guard_unlimited_noop;
    Alcotest.test_case "guard: nesting restores the outer guard" `Quick
      test_guard_nesting_restored;
    Alcotest.test_case "guard: cuts a runaway interpreter" `Quick test_guard_cuts_interp;
    Alcotest.test_case "guard: cuts a pipeline between passes" `Quick test_guard_cuts_passmgr;
    Alcotest.test_case "engine: hang quarantined as timeout" `Quick
      test_engine_timeout_quarantine;
    Alcotest.test_case "engine: wall-clock deadline" `Quick test_engine_wall_clock_deadline;
    Alcotest.test_case "engine: transient fault recovers by retry" `Quick
      test_engine_retry_recovers;
    Alcotest.test_case "engine: retry budget exhausts into quarantine" `Quick
      test_engine_retry_exhausted;
    Alcotest.test_case "engine: backtrace captured at quarantine" `Quick
      test_engine_backtrace_captured;
    Alcotest.test_case "journal: second opener fails fast" `Quick
      test_journal_double_open_fails;
    Alcotest.test_case "chaos: plan spec parses and round-trips" `Quick test_chaos_plan_parse;
    Alcotest.test_case "chaos: hang refused without a guard" `Quick
      test_chaos_hang_refused_without_guard;
    Alcotest.test_case "checked mode: invalid IR blames the pass" `Quick
      test_checked_mode_blames_pass;
    Alcotest.test_case "bundle: write/load round-trip" `Quick test_bundle_roundtrip;
    Alcotest.test_case "bundle: campaign writes parseable repros" `Quick
      test_bundles_written_by_campaign;
    Alcotest.test_case "soak: faults quarantined or recovered, all accounted" `Slow
      test_soak_fault_accounting;
    Alcotest.test_case "soak: non-faulted cases byte-identical" `Slow
      test_soak_non_faulted_identical;
    Alcotest.test_case "soak: identical at jobs 1/3/4" `Slow test_soak_jobs_independent;
    Alcotest.test_case "soak: torn journal resumes under chaos" `Slow
      test_soak_resume_under_chaos;
  ]
