(* Shared helpers for the test suites. *)

module C = Dce_compiler
module Core = Dce_core
module Ir = Dce_ir.Ir
module I = Dce_interp.Interp

let parse src = Dce_minic.Typecheck.check_exn (Dce_minic.Parser.parse_program src)

let lower src = Dce_ir.Lower.program (parse src)

let run_src ?fuel src = I.run ?fuel (lower src)

let exit_code src =
  match (run_src src).I.outcome with
  | I.Finished n -> n
  | I.Trap m -> Alcotest.failf "trap: %s" m
  | I.Out_of_fuel -> Alcotest.fail "out of fuel"

let iset_of_list l = List.fold_left (fun s x -> Ir.Iset.add x s) Ir.Iset.empty l

let iset = Alcotest.testable
    (fun fmt s ->
      Format.fprintf fmt "{%s}" (String.concat "," (List.map string_of_int (Ir.Iset.elements s))))
    Ir.Iset.equal

let compiler_named = function
  | "gcc" -> C.Gcc_sim.compiler
  | "llvm" -> C.Llvm_sim.compiler
  | other -> Alcotest.failf "unknown compiler %s" other

let surviving ?version comp level src =
  C.Compiler.surviving_markers (compiler_named comp) ?version level (parse src)

let eliminates ?version comp level marker src =
  not (List.mem marker (surviving ?version comp level src))

(* observable equivalence of a program before and after a transformation;
   routed through the shared executor, so the VM backend is soak-tested by
   every pass-correctness property in the suite *)
let check_equivalent ~name original transformed =
  if not (Core.Differential.semantics_preserved original transformed) then
    Alcotest.failf "%s changed observable behaviour" name

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* a generated, valid program from a seed *)
let smith_program seed = fst (Dce_smith.Smith.generate (Dce_smith.Smith.default_config seed))

(* substring containment for assembly/IR text checks *)
let contains text needle =
  let n = String.length needle and m = String.length text in
  let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
  n = 0 || go 0
