(* The size and level-inversion oracles: unit tests on hand-built data,
   end-to-end campaign determinism/resume, reducer predicates, and QCheck
   properties (backend independence, render invariance). *)

open Helpers
module C = Dce_compiler
module Core = Dce_core
module D = Core.Differential
module Ir = Dce_ir.Ir
module Asm = Dce_backend.Asm
module Campaign = Dce_campaign
module O = Campaign.Oracle_campaign
module Smith = Dce_smith.Smith

(* ------------------------------------------------------------------ *)
(* Asm.size                                                            *)
(* ------------------------------------------------------------------ *)

let test_asm_size_counts_instructions () =
  let asm =
    {
      Asm.lines =
        [
          Asm.Label "main";
          Asm.Directive "globl main";
          Asm.Ins ("movq", [ "$1"; "%rax" ]);
          Asm.Ins ("callq", [ "DCEMarker0" ]);
          Asm.Label "L1";
          Asm.Ins ("retq", []);
        ];
    }
  in
  (* labels and directives assemble to no bytes: only Ins lines count *)
  Alcotest.(check int) "size" 3 (Asm.size asm);
  Alcotest.(check int) "size = instruction_count" (Asm.instruction_count asm) (Asm.size asm)

(* ------------------------------------------------------------------ *)
(* size_findings_of: hand-built curves, threshold edges                *)
(* ------------------------------------------------------------------ *)

let curve g_os g_o2 l_os l_o2 =
  [
    ("gcc-sim", C.Level.Os, g_os);
    ("gcc-sim", C.Level.O2, g_o2);
    ("llvm-sim", C.Level.Os, l_os);
    ("llvm-sim", C.Level.O2, l_o2);
  ]

let cross = function D.Size_cross _ -> true | D.Size_intra _ -> false
let intra f = not (cross f)

let test_size_cross_threshold_edges () =
  (* 125 vs 100 at ratio 1.25: exactly at the threshold fires *)
  let at = D.size_findings_of ~ratio:1.25 (curve 125 100 100 100) in
  Alcotest.(check int) "exactly at ratio fires" 1 (List.length (List.filter cross at));
  (match List.find cross at with
   | D.Size_cross { larger; larger_size; smaller; smaller_size; level } ->
     Alcotest.(check string) "larger compiler" "gcc-sim" larger;
     Alcotest.(check string) "smaller compiler" "llvm-sim" smaller;
     Alcotest.(check int) "larger size" 125 larger_size;
     Alcotest.(check int) "smaller size" 100 smaller_size;
     Alcotest.(check bool) "at -Os" true (level = C.Level.Os)
   | D.Size_intra _ -> Alcotest.fail "expected a cross finding");
  (* one instruction under the threshold does not *)
  let below = D.size_findings_of ~ratio:1.25 (curve 124 100 100 100) in
  Alcotest.(check int) "below ratio is silent" 0 (List.length (List.filter cross below));
  (* equal outputs never fire, even at ratio 1.0 (strictly-larger guard) *)
  let equal = D.size_findings_of ~ratio:1.0 (curve 100 100 100 100) in
  Alcotest.(check int) "equal sizes, ratio 1.0" 0 (List.length (List.filter cross equal));
  (* direction is symmetric: the larger side is found either way round *)
  let other = D.size_findings_of ~ratio:1.25 (curve 100 100 150 100) in
  (match List.find cross other with
   | D.Size_cross { larger; _ } -> Alcotest.(check string) "llvm larger" "llvm-sim" larger
   | D.Size_intra _ -> Alcotest.fail "expected a cross finding")

let test_size_intra_os_exceeds_own_o2 () =
  (* any strict excess of -Os over the same compiler's -O2 fires *)
  let f = D.size_findings_of ~ratio:9.9 (curve 101 100 100 100) in
  Alcotest.(check int) "strict excess fires regardless of ratio" 1
    (List.length (List.filter intra f));
  (match List.find intra f with
   | D.Size_intra { compiler; os_size; o2_size } ->
     Alcotest.(check string) "compiler" "gcc-sim" compiler;
     Alcotest.(check int) "os" 101 os_size;
     Alcotest.(check int) "o2" 100 o2_size
   | D.Size_cross _ -> Alcotest.fail "expected an intra finding");
  Alcotest.(check int) "equal is silent" 0
    (List.length (List.filter intra (D.size_findings_of (curve 100 100 100 100))));
  Alcotest.(check int) "-Os smaller is the expected case" 0
    (List.length (List.filter intra (D.size_findings_of (curve 90 100 80 100))));
  Alcotest.(check int) "both compilers can fire" 2
    (List.length (List.filter intra (D.size_findings_of (curve 120 100 130 100))))

(* A real, minimal intra gap: gcc-sim -O2 unrolls and folds this loop away,
   -Os (no unroll) keeps it — the shape the size-hunt reducer converges to. *)
let size_gap_src = "int main(void) { int t = 0; while (t < 1) { t = t + 1; } return 0; }"

let test_size_known_gap_real_program () =
  let prog = parse size_gap_src in
  let gcc = C.Gcc_sim.compiler in
  let os = D.asm_size { D.compiler = gcc; level = C.Level.Os; version = None } prog in
  let o2 = D.asm_size { D.compiler = gcc; level = C.Level.O2; version = None } prog in
  Alcotest.(check bool) "known gap: -Os strictly larger than own -O2" true (os > o2);
  let findings = D.size_findings ~compilers:[ gcc ] prog in
  Alcotest.(check bool) "intra finding reported" true
    (List.exists (function D.Size_intra { compiler = "gcc-sim"; _ } -> true | _ -> false)
       findings)

let test_size_routes_through_compile_cache () =
  let prog = parse size_gap_src in
  let gcc = C.Gcc_sim.compiler in
  C.Compiler.clear_caches ();
  let s1 = C.Compiler.asm_size_cached gcc C.Level.Os prog in
  let c1 = (C.Compiler.cache_stats ()).C.Compiler.cs_surviving in
  let s2 = C.Compiler.asm_size_cached gcc C.Level.Os prog in
  (* the sibling observable of the same compile is a hit, not a second
     pipeline: one cache entry answers both oracles *)
  let markers = C.Compiler.surviving_markers_cached gcc C.Level.Os prog in
  let c2 = (C.Compiler.cache_stats ()).C.Compiler.cs_surviving in
  Alcotest.(check int) "size stable" s1 s2;
  Alcotest.(check int) "one miss total" c1.C.Compile_cache.misses c2.C.Compile_cache.misses;
  Alcotest.(check bool) "two more hits" true
    (c2.C.Compile_cache.hits >= c1.C.Compile_cache.hits + 1);
  Alcotest.(check bool) "marker view agrees with uncached" true
    (markers = C.Compiler.surviving_markers gcc C.Level.Os prog)

(* ------------------------------------------------------------------ *)
(* inversions: crafted per-level surviving sets                        *)
(* ------------------------------------------------------------------ *)

let test_inversions_crafted () =
  let dead = iset_of_list [ 1; 2; 3; 5 ] in
  let per_level =
    [
      (* marker 1: dead everywhere — monotone, no inversion.
         marker 2: eliminated at O1 only, survives O2/O3 — inversion O1→O3.
         marker 3: survives everywhere — plain miss, no inversion.
         marker 4: alive (not in dead) — ignored even though shape inverts.
         marker 5: eliminated at Os and O2, survives O3 — inversion Os→O3. *)
      (C.Level.O1, iset_of_list [ 3; 5 ]);
      (C.Level.Os, iset_of_list [ 2; 3; 4 ]);
      (C.Level.O2, iset_of_list [ 2; 3; 4 ]);
      (C.Level.O3, iset_of_list [ 2; 3; 4; 5 ]);
    ]
  in
  match D.inversions ~dead per_level with
  | [ a; b ] ->
    Alcotest.(check int) "first marker" 2 a.D.iv_marker;
    Alcotest.(check bool) "2: low O1" true (a.D.iv_low = C.Level.O1);
    Alcotest.(check bool) "2: high O3" true (a.D.iv_high = C.Level.O3);
    Alcotest.(check int) "second marker" 5 b.D.iv_marker;
    Alcotest.(check bool) "5: low Os" true (b.D.iv_low = C.Level.Os);
    Alcotest.(check bool) "5: high O3" true (b.D.iv_high = C.Level.O3)
  | other -> Alcotest.failf "expected exactly two inversions, got %d" (List.length other)

let test_inversions_empty_cases () =
  Alcotest.(check int) "no dead markers" 0
    (List.length (D.inversions ~dead:Ir.Iset.empty [ (C.Level.O1, iset_of_list [ 1 ]) ]));
  Alcotest.(check int) "single level cannot invert" 0
    (List.length
       (D.inversions ~dead:(iset_of_list [ 1 ]) [ (C.Level.O3, iset_of_list [ 1 ]) ]))

(* a corpus case known (deterministically) to carry a gcc-sim inversion:
   case 1 of the default campaign seed *)
let inversion_case = lazy (List.nth (Smith.corpus_seeds ~seed:20220228 ~count:2) 1)

let inversion_program () =
  Core.Instrument.program (fst (Smith.generate (Smith.default_config (Lazy.force inversion_case))))

let test_inversions_real_pipeline () =
  let prog = inversion_program () in
  match Core.Ground_truth.compute prog with
  | Core.Ground_truth.Rejected r -> Alcotest.failf "rejected: %s" r
  | Core.Ground_truth.Valid truth ->
    let dead = truth.Core.Ground_truth.dead in
    let invs = D.inversions_of ~dead C.Gcc_sim.compiler prog in
    Alcotest.(check bool) "gcc-sim inversions exist on this case" true (invs <> []);
    List.iter
      (fun iv ->
        Alcotest.(check bool) "low is strictly weaker" true
          (C.Level.rank iv.D.iv_low < C.Level.rank iv.D.iv_high);
        (* verify the claim against the raw compiler: dead at low, alive at high *)
        let surv l = C.Compiler.surviving_markers C.Gcc_sim.compiler l prog in
        Alcotest.(check bool) "marker dead at low" false (List.mem iv.D.iv_marker (surv iv.D.iv_low));
        Alcotest.(check bool) "marker alive at high" true
          (List.mem iv.D.iv_marker (surv iv.D.iv_high)))
      invs

(* ------------------------------------------------------------------ *)
(* campaigns: jobs determinism, torn-journal resume                    *)
(* ------------------------------------------------------------------ *)

let temp_journal () = Filename.temp_file "dce-oracle-journal" ".jsonl"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let truncate_journal path ~cases =
  let lines = String.split_on_char '\n' (read_file path) in
  let kept = List.filteri (fun i _ -> i <= cases) lines in
  write_file path (String.concat "\n" kept ^ "\n{\"case\":99,\"stat")

let test_size_campaign_jobs_determinism () =
  let run jobs = O.run_size ~jobs ~seed:4242 ~count:10 () in
  let a = run 1 and b = run 3 and c = run 4 in
  Alcotest.(check bool) "cases 1=3" true (a.O.s_cases = b.O.s_cases);
  Alcotest.(check bool) "cases 1=4" true (a.O.s_cases = c.O.s_cases);
  Alcotest.(check string) "report 1=3" (O.size_report a) (O.size_report b);
  Alcotest.(check string) "report 1=4" (O.size_report a) (O.size_report c)

let test_inversion_campaign_jobs_determinism () =
  let run jobs = O.run_inversion ~jobs ~seed:4242 ~count:10 () in
  let a = run 1 and b = run 3 and c = run 4 in
  Alcotest.(check bool) "cases 1=3" true (a.O.i_cases = b.O.i_cases);
  Alcotest.(check bool) "cases 1=4" true (a.O.i_cases = c.O.i_cases);
  Alcotest.(check string) "report 1=3" (O.inversion_report a) (O.inversion_report b);
  Alcotest.(check string) "report 1=4" (O.inversion_report a) (O.inversion_report c)

let test_size_campaign_resume () =
  let path = temp_journal () in
  let full = O.run_size ~journal:path ~jobs:1 ~seed:555 ~count:8 () in
  truncate_journal path ~cases:3;
  let resumed = O.run_size ~journal:path ~jobs:2 ~seed:555 ~count:8 () in
  Alcotest.(check int) "three size-cases restored" 3 resumed.O.s_resumed;
  Alcotest.(check bool) "cases equal after resume" true (full.O.s_cases = resumed.O.s_cases);
  Alcotest.(check string) "report equal after resume" (O.size_report full)
    (O.size_report resumed);
  Sys.remove path

(* inv_case holds Isets, whose AVL shape depends on insertion order:
   structural (=) would distinguish a decoded set from a live-computed
   equal one.  Compare through the canonical journal encoding instead. *)
let inv_cases_rendered t =
  Array.map
    (function
      | Campaign.Engine.Done c ->
        Campaign.Json.to_string (O.inv_codec.Campaign.Engine.encode c)
      | Campaign.Engine.Crashed q -> "crashed:" ^ string_of_int q.Campaign.Engine.q_case)
    t.O.i_cases

let test_inversion_campaign_resume () =
  let path = temp_journal () in
  let full = O.run_inversion ~journal:path ~jobs:1 ~seed:555 ~count:8 () in
  truncate_journal path ~cases:3;
  let resumed = O.run_inversion ~journal:path ~jobs:2 ~seed:555 ~count:8 () in
  Alcotest.(check int) "three inversion-cases restored" 3 resumed.O.i_resumed;
  Alcotest.(check bool) "cases equal after resume" true
    (inv_cases_rendered full = inv_cases_rendered resumed);
  Alcotest.(check bool) "findings equal after resume" true
    (O.inversion_findings full = O.inversion_findings resumed);
  Alcotest.(check string) "report equal after resume" (O.inversion_report full)
    (O.inversion_report resumed);
  Sys.remove path

let test_size_codec_round_trip () =
  let sc =
    {
      O.sc_seed = Lazy.force inversion_case;
      sc_rejected = None;
      sc_curve = curve 125 100 99 100;
    }
  in
  Alcotest.(check bool) "curve round-trips" true
    (O.size_codec.Campaign.Engine.decode (O.size_codec.Campaign.Engine.encode sc) = sc);
  let rej = { O.sc_seed = 3; sc_rejected = Some "trap: oops"; sc_curve = [] } in
  Alcotest.(check bool) "rejection round-trips" true
    (O.size_codec.Campaign.Engine.decode (O.size_codec.Campaign.Engine.encode rej) = rej)

let test_inv_codec_rederives_findings () =
  (* decode re-derives inversions from the journaled dead/surviving sets and
     joins the journaled guilty passes — a finding list survives untouched *)
  let ic =
    {
      O.ic_seed = 7;
      ic_rejected = None;
      ic_dead = iset_of_list [ 2; 5 ];
      ic_surviving =
        [
          ( "gcc-sim",
            [
              (C.Level.O1, iset_of_list []);
              (C.Level.Os, iset_of_list [ 2 ]);
              (C.Level.O2, iset_of_list [ 2 ]);
              (C.Level.O3, iset_of_list [ 2; 5 ]);
            ] );
        ];
      ic_findings =
        [
          {
            O.if_compiler = "gcc-sim";
            if_inversion = { D.iv_marker = 2; iv_low = C.Level.O1; iv_high = C.Level.O3 };
            if_guilty = "simplify-cfg";
          };
          {
            O.if_compiler = "gcc-sim";
            if_inversion = { D.iv_marker = 5; iv_low = C.Level.O1; iv_high = C.Level.O3 };
            if_guilty = "function-dce";
          };
        ];
    }
  in
  Alcotest.(check bool) "inversion case round-trips" true
    (O.inv_codec.Campaign.Engine.decode (O.inv_codec.Campaign.Engine.encode ic) = ic)

(* ------------------------------------------------------------------ *)
(* reducer predicates: the reduced program still trips its oracle      *)
(* ------------------------------------------------------------------ *)

module P = Dce_reduce.Predicate

let gcc_at l = { D.compiler = C.Gcc_sim.compiler; level = l; version = None }

let passes p prog = fst (P.run p prog) = P.Pass

let test_size_gap_predicate () =
  let p =
    P.size_gap ~compile_cache:true ~larger:(gcc_at C.Level.Os) ~smaller:(gcc_at C.Level.O2)
      ~min_ratio:1.0 ~min_gap:1 ()
  in
  Alcotest.(check bool) "gap program passes" true (passes p (parse size_gap_src));
  Alcotest.(check bool) "gapless program rejected" false
    (passes p (parse "int main(void) { return 0; }"));
  (* min_gap floors out tiny ratios: demand a bigger absolute gap than the
     program has and the same repro stops qualifying *)
  let strict =
    P.size_gap ~compile_cache:true ~larger:(gcc_at C.Level.Os) ~smaller:(gcc_at C.Level.O2)
      ~min_ratio:1.0 ~min_gap:10000 ()
  in
  Alcotest.(check bool) "absolute floor rejects" false (passes strict (parse size_gap_src))

let test_size_gap_reduction_preserves_gap () =
  let prog = parse size_gap_src in
  let predicate =
    P.size_gap ~compile_cache:true ~larger:(gcc_at C.Level.Os) ~smaller:(gcc_at C.Level.O2)
      ~min_ratio:1.0 ~min_gap:1 ()
  in
  let result = Dce_reduce.Engine.reduce ~max_tests:500 ~predicate prog in
  let reduced = result.Dce_reduce.Engine.program in
  Alcotest.(check bool) "reduced program still exhibits the size gap" true
    (passes predicate reduced);
  let os = D.asm_size (gcc_at C.Level.Os) reduced
  and o2 = D.asm_size (gcc_at C.Level.O2) reduced in
  Alcotest.(check bool) "gap visible in raw sizes" true (os > o2)

let first_gcc_inversion prog =
  match Core.Ground_truth.compute prog with
  | Core.Ground_truth.Rejected r -> Alcotest.failf "rejected: %s" r
  | Core.Ground_truth.Valid truth -> (
    match
      D.inversions_of ~dead:truth.Core.Ground_truth.dead C.Gcc_sim.compiler prog
    with
    | iv :: _ -> iv
    | [] -> Alcotest.fail "expected a gcc-sim inversion on the pinned case")

let test_level_inversion_predicate () =
  let prog = inversion_program () in
  let iv = first_gcc_inversion prog in
  let p =
    P.level_inversion ~compile_cache:true ~compiler:C.Gcc_sim.compiler ~low:iv.D.iv_low
      ~high:iv.D.iv_high ~marker:iv.D.iv_marker ()
  in
  Alcotest.(check bool) "inverted case passes" true (passes p prog);
  (* a marker that does not invert must be rejected *)
  let p_bogus =
    P.level_inversion ~compile_cache:true ~compiler:C.Gcc_sim.compiler ~low:iv.D.iv_low
      ~high:iv.D.iv_high ~marker:100000 ()
  in
  Alcotest.(check bool) "absent marker rejected" false (passes p_bogus prog)

let test_level_inversion_reduction_preserves_inversion () =
  let prog = inversion_program () in
  let iv = first_gcc_inversion prog in
  let predicate =
    P.level_inversion ~compile_cache:true ~compiler:C.Gcc_sim.compiler ~low:iv.D.iv_low
      ~high:iv.D.iv_high ~marker:iv.D.iv_marker ()
  in
  let result = Dce_reduce.Engine.reduce ~max_tests:600 ~jobs:2 ~predicate prog in
  let reduced = result.Dce_reduce.Engine.program in
  Alcotest.(check bool) "smaller or equal" true
    (result.Dce_reduce.Engine.final_size <= result.Dce_reduce.Engine.initial_size);
  Alcotest.(check bool) "reduced program still exhibits the inversion" true
    (passes predicate reduced);
  let surv l = C.Compiler.surviving_markers C.Gcc_sim.compiler l reduced in
  Alcotest.(check bool) "low still eliminates" false (List.mem iv.D.iv_marker (surv iv.D.iv_low));
  Alcotest.(check bool) "high still keeps" true (List.mem iv.D.iv_marker (surv iv.D.iv_high))

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let vm = Option.get (Dce_exec.Exec.of_string "vm")
let interp = Option.get (Dce_exec.Exec.of_string "interp")

let qcheck_tests =
  let gen_seed = QCheck2.Gen.(int_range 1 10000000) in
  let compilers = [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ] in
  [
    qtest ~count:10 "size verdicts deterministic and cache-transparent" gen_seed (fun seed ->
        let prog = Core.Instrument.program (smith_program seed) in
        let cached = D.size_findings ~cache:true ~compilers prog in
        cached = D.size_findings ~cache:false ~compilers prog
        && cached = D.size_findings ~cache:true ~compilers prog);
    qtest ~count:10 "inversion verdicts independent of executor backend" gen_seed (fun seed ->
        let prog = Core.Instrument.program (smith_program seed) in
        let invs exec =
          match Core.Ground_truth.compute ~exec prog with
          | Core.Ground_truth.Rejected r -> Error r
          | Core.Ground_truth.Valid truth ->
            Ok
              (List.map
                 (fun c -> D.inversions_of ~dead:truth.Core.Ground_truth.dead c prog)
                 compilers)
        in
        invs vm = invs interp);
    qtest ~count:10 "inversions are cache-transparent" gen_seed (fun seed ->
        let prog = Core.Instrument.program (smith_program seed) in
        match Core.Ground_truth.compute prog with
        | Core.Ground_truth.Rejected _ -> true
        | Core.Ground_truth.Valid truth ->
          let dead = truth.Core.Ground_truth.dead in
          List.for_all
            (fun c ->
              D.inversions_of ~cache:true ~dead c prog = D.inversions_of ~cache:false ~dead c prog)
            compilers);
    qtest ~count:10 "Asm.size invariant under program re-rendering" gen_seed (fun seed ->
        (* print → parse → recheck must not change any emitted size: size is
           a function of the program, not of its concrete rendering *)
        let prog = Core.Instrument.program (smith_program seed) in
        let reparsed =
          Dce_minic.Typecheck.check_exn
            (Dce_minic.Parser.parse_program (Dce_minic.Pretty.program_to_string prog))
        in
        List.for_all
          (fun c ->
            List.for_all
              (fun level ->
                let cfg = { D.compiler = c; level; version = None } in
                D.asm_size ~cache:false cfg prog = D.asm_size ~cache:false cfg reparsed)
              C.Level.all)
          compilers);
  ]

let suite =
  [
    ("asm: size counts instructions only", `Quick, test_asm_size_counts_instructions);
    ("size: cross threshold edges", `Quick, test_size_cross_threshold_edges);
    ("size: -Os exceeding own -O2", `Quick, test_size_intra_os_exceeds_own_o2);
    ("size: known gap on a real program", `Quick, test_size_known_gap_real_program);
    ("size: routed through the compile cache", `Quick, test_size_routes_through_compile_cache);
    ("inversions: crafted surviving sets", `Quick, test_inversions_crafted);
    ("inversions: degenerate inputs", `Quick, test_inversions_empty_cases);
    ("inversions: real pipeline case", `Slow, test_inversions_real_pipeline);
    ("size campaign: jobs 1/3/4 byte-identical", `Slow, test_size_campaign_jobs_determinism);
    ( "inversion campaign: jobs 1/3/4 byte-identical",
      `Slow,
      test_inversion_campaign_jobs_determinism );
    ("size campaign: torn-journal resume", `Slow, test_size_campaign_resume);
    ("inversion campaign: torn-journal resume", `Slow, test_inversion_campaign_resume);
    ("size-case codec round-trip", `Quick, test_size_codec_round_trip);
    ("inversion-case codec re-derives findings", `Quick, test_inv_codec_rederives_findings);
    ("predicate: size gap stages", `Quick, test_size_gap_predicate);
    ("predicate: reduction preserves the size gap", `Slow, test_size_gap_reduction_preserves_gap);
    ("predicate: level inversion stages", `Slow, test_level_inversion_predicate);
    ( "predicate: reduction preserves the inversion",
      `Slow,
      test_level_inversion_reduction_preserves_inversion );
  ]
  @ qcheck_tests
