(* Tests for the compiler layer: levels, feature matrices, the version/commit
   model, pipeline scheduling, and the end-to-end semantic-preservation
   property of both simulated compilers. *)

open Helpers
module C = Dce_compiler
module Ir = Dce_ir.Ir
module I = Dce_interp.Interp

(* ---- levels ---- *)

let test_level_strings () =
  List.iter
    (fun l ->
      Alcotest.(check bool) "round trip" true (C.Level.of_string (C.Level.to_string l) = Some l))
    C.Level.all;
  Alcotest.(check bool) "lenient parse" true (C.Level.of_string "o2" = Some C.Level.O2);
  Alcotest.(check bool) "unknown" true (C.Level.of_string "O9" = None)

let test_level_ordering () =
  Alcotest.(check bool) "O0 < O1" true (C.Level.compare_strength C.Level.O0 C.Level.O1 < 0);
  Alcotest.(check bool) "O1 < Os" true (C.Level.compare_strength C.Level.O1 C.Level.Os < 0);
  Alcotest.(check bool) "Os < O2" true (C.Level.compare_strength C.Level.Os C.Level.O2 < 0);
  Alcotest.(check bool) "O2 < O3" true (C.Level.compare_strength C.Level.O2 C.Level.O3 < 0)

(* ---- versions ---- *)

let test_version_zero_is_nothing () =
  List.iter
    (fun compiler ->
      List.iter
        (fun level ->
          Alcotest.(check bool) "version 0 = primitive base" true
            (C.Version.features_at compiler.C.Compiler.history 0 level = C.Features.nothing))
        C.Level.all)
    [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ]

let test_version_o0_stays_nothing () =
  List.iter
    (fun compiler ->
      let head = C.Compiler.head compiler in
      Alcotest.(check bool) "-O0 never gains features" true
        (C.Compiler.features compiler ~version:head C.Level.O0 = C.Features.nothing))
    [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ]

let test_head_excludes_post_head () =
  List.iter
    (fun compiler ->
      let post =
        List.filter (fun c -> c.C.Version.post_head) compiler.C.Compiler.history
      in
      Alcotest.(check bool) "has post-head fixes" true (List.length post > 0);
      Alcotest.(check int) "head skips them"
        (List.length compiler.C.Compiler.history - List.length post)
        (C.Compiler.head compiler))
    [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ]

let test_commit_ids_unique () =
  List.iter
    (fun compiler ->
      let ids = List.map (fun c -> c.C.Version.id) compiler.C.Compiler.history in
      Alcotest.(check int) "unique ids" (List.length ids)
        (List.length (Dce_support.Listx.uniq ids)))
    [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ]

let test_commit_id_collision_detected () =
  (* "b0" and "aQ" are a verified collision pair of the 44-bit truncated
     djb2 id hash: distinct summaries, same commit id.  History
     construction must refuse them loudly — a silent collision would
     mis-attribute bisections and alias journal commit references. *)
  let mk s = C.Version.make_commit ~summary:s ~component:"x" ~files:[] (fun _ f -> f) in
  let a = mk "b0" and b = mk "aQ" in
  Alcotest.(check string) "the pair really collides" a.C.Version.id b.C.Version.id;
  (match C.Version.validate_history [ a; b ] with
   | () -> Alcotest.fail "colliding history accepted"
   | exception Failure msg ->
     Alcotest.(check bool) "error names both summaries" true
       (Helpers.contains msg "b0" && Helpers.contains msg "aQ"));
  (match C.Version.validate_history [ a; mk "b0" ] with
   | () -> Alcotest.fail "duplicate summary accepted"
   | exception Failure msg ->
     Alcotest.(check bool) "duplicate reported as duplicate" true
       (Helpers.contains msg "duplicate"));
  (match C.Compiler.create ~name:"bad" [ a; b ] with
   | _ -> Alcotest.fail "Compiler.create accepted a colliding history"
   | exception Failure _ -> ());
  (* the built-in histories construct through the same validation *)
  C.Version.validate_history C.Gcc_sim.compiler.C.Compiler.history;
  C.Version.validate_history C.Llvm_sim.compiler.C.Compiler.history

let test_designed_head_traits () =
  let gcc = C.Compiler.features C.Gcc_sim.compiler C.Level.O3 in
  let llvm = C.Compiler.features C.Llvm_sim.compiler C.Level.O3 in
  Alcotest.(check bool) "gcc gva flow-insensitive" true
    (gcc.C.Features.gva = Dce_opt.Gva.Flow_insensitive);
  Alcotest.(check bool) "llvm gva if-const" true
    (llvm.C.Features.gva = Dce_opt.Gva.Flow_sensitive_if_const);
  Alcotest.(check bool) "gcc folds all address compares" true
    (gcc.C.Features.addr_cmp = Dce_opt.Sccp.Cmp_full);
  Alcotest.(check bool) "llvm only zero offsets" true
    (llvm.C.Features.addr_cmp = Dce_opt.Sccp.Cmp_zero_only);
  Alcotest.(check bool) "gcc keeps end-of-life stores (Listing 1)" true
    (gcc.C.Features.dse_strength = 1);
  Alcotest.(check bool) "llvm removes them" true (llvm.C.Features.dse_strength = 2);
  Alcotest.(check bool) "gcc vectorizes at O3" true gcc.C.Features.vectorize;
  Alcotest.(check bool) "llvm unswitches at O3" true llvm.C.Features.unswitch;
  Alcotest.(check bool) "llvm loses edge-aware memcp at O3" false
    llvm.C.Features.memcp_edge_aware;
  Alcotest.(check bool) "gcc keeps it" true gcc.C.Features.memcp_edge_aware

let test_post_head_fixes_apply () =
  (* applying the full history (including post-HEAD fixes) repairs the
     shift-rule gap in GCC *)
  let full = List.length C.Gcc_sim.compiler.C.Compiler.history in
  let feats = C.Compiler.features C.Gcc_sim.compiler ~version:full C.Level.O3 in
  Alcotest.(check bool) "shift rule fixed post-head" true feats.C.Features.vrp_shift_rule;
  Alcotest.(check bool) "uniform arrays fixed post-head" true feats.C.Features.uniform_arrays

(* ---- pipeline scheduling ---- *)

let test_schedule_o0_trivial () =
  let feats = C.Compiler.features C.Gcc_sim.compiler C.Level.O0 in
  Alcotest.(check (list string)) "front-end cleanup only" [ "simplify-cfg" ]
    (C.Pipeline.stage_names feats)

let test_schedule_contains_designed_order () =
  let feats = C.Compiler.features C.Gcc_sim.compiler C.Level.O3 in
  let names = C.Pipeline.stage_names feats in
  let idx name =
    let rec go i = function
      | [] -> Alcotest.failf "stage %s missing" name
      | x :: rest -> if x = name then i else go (i + 1) rest
    in
    go 0 names
  in
  Alcotest.(check bool) "ssa before everything" true (idx "ssa" < idx "inline");
  Alcotest.(check bool) "early fdce before inline (the 9b regression)" true
    (idx "function-dce-early" < idx "inline");
  Alcotest.(check bool) "vectorizer claims loops before the unroller" true
    (idx "vectorize" < idx "unroll");
  Alcotest.(check bool) "promote before vectorize" true (idx "loop-promote" < idx "vectorize");
  Alcotest.(check bool) "dse runs late" true (idx "dse" > idx "unroll")

let test_schedule_llvm_has_late_fdce () =
  let feats = C.Compiler.features C.Llvm_sim.compiler C.Level.O3 in
  let names = C.Pipeline.stage_names feats in
  Alcotest.(check bool) "llvm keeps the late removal" true (List.mem "function-dce" names);
  Alcotest.(check bool) "and has no early one" false (List.mem "function-dce-early" names)

(* ---- end-to-end compilation ---- *)

let test_compile_validates_all_configs () =
  let prog = parse {|
static int helper(int x) { if (x > 3) { return x * 2; } return x; }
static int acc;
int main(void) {
  int i;
  for (i = 0; i < 6; i++) { acc += helper(i); }
  if (acc == 12345) { DCEMarker0(); }
  use(acc);
  return 0;
}
|} in
  List.iter
    (fun compiler ->
      List.iter
        (fun level -> ignore (C.Compiler.compile_ir compiler ~validate:true level prog))
        C.Level.all)
    [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ]

let test_higher_levels_never_slower_code () =
  (* optimization should not increase the emitted instruction count much;
     check O3 produces no more instructions than O0 on a foldable program *)
  let prog = parse {|
int main(void) {
  int i;
  int s = 0;
  for (i = 0; i < 8; i++) { s += i; }
  return s;
}
|} in
  let size compiler level =
    Dce_backend.Asm.instruction_count (C.Compiler.compile compiler level prog)
  in
  List.iter
    (fun compiler ->
      Alcotest.(check bool) "O3 <= O0 size on foldable code" true
        (size compiler C.Level.O3 <= size compiler C.Level.O0))
    [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ]

let qcheck_tests =
  let gen = QCheck2.Gen.(int_range 1 1000000) in
  let preserves compiler level seed =
    let prog = smith_program seed in
    let instr = Dce_core.Instrument.program prog in
    let base = I.run (Dce_ir.Lower.program instr) in
    match base.I.outcome with
    | I.Finished _ ->
      let opt = C.Compiler.compile_ir compiler ~validate:true level instr in
      I.equivalent base (I.run opt)
    | I.Trap _ | I.Out_of_fuel -> true (* rejected programs are out of scope *)
  in
  [
    qtest ~count:20 "gcc-sim -O3 preserves observable behaviour" gen
      (preserves C.Gcc_sim.compiler C.Level.O3);
    qtest ~count:20 "llvm-sim -O3 preserves observable behaviour" gen
      (preserves C.Llvm_sim.compiler C.Level.O3);
    qtest ~count:10 "gcc-sim -O2 preserves observable behaviour" gen
      (preserves C.Gcc_sim.compiler C.Level.O2);
    qtest ~count:10 "llvm-sim -Os preserves observable behaviour" gen
      (preserves C.Llvm_sim.compiler C.Level.Os);
    qtest ~count:10 "gcc-sim -O1 preserves observable behaviour" gen
      (preserves C.Gcc_sim.compiler C.Level.O1);
    qtest ~count:8 "historic versions also preserve behaviour" gen (fun seed ->
        let prog = Dce_core.Instrument.program (smith_program seed) in
        let base = I.run (Dce_ir.Lower.program prog) in
        match base.I.outcome with
        | I.Finished _ ->
          List.for_all
            (fun v ->
              let opt = C.Compiler.compile_ir C.Gcc_sim.compiler ~version:v C.Level.O2 prog in
              I.equivalent base (I.run opt))
            [ 3; 10; 17 ]
        | I.Trap _ | I.Out_of_fuel -> true);
  ]

let test_post_head_commits_are_suffix () =
  List.iter
    (fun compiler ->
      let seen_post_head = ref false in
      List.iter
        (fun c ->
          if c.C.Version.post_head then seen_post_head := true
          else if !seen_post_head then
            Alcotest.failf "%s: pre-head commit %s after a post-head one"
              compiler.C.Compiler.name c.C.Version.id)
        compiler.C.Compiler.history)
    [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ]

let test_commits_carry_metadata () =
  List.iter
    (fun compiler ->
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s has component" compiler.C.Compiler.name c.C.Version.id)
            true
            (String.length c.C.Version.component > 0);
          Alcotest.(check bool)
            (Printf.sprintf "%s %s touches files" compiler.C.Compiler.name c.C.Version.id)
            true
            (c.C.Version.files <> []))
        compiler.C.Compiler.history)
    [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ]

let test_head_features_match_default () =
  List.iter
    (fun compiler ->
      List.iter
        (fun level ->
          let at_head =
            C.Compiler.features compiler ~version:(C.Compiler.head compiler) level
          in
          let default = C.Compiler.features compiler level in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s" compiler.C.Compiler.name (C.Level.to_string level))
            true (at_head = default))
        C.Level.all)
    [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ]

let suite =
  [
    ("levels: strings", `Quick, test_level_strings);
    ("levels: ordering", `Quick, test_level_ordering);
    ("versions: v0 is the primitive base", `Quick, test_version_zero_is_nothing);
    ("versions: O0 never gains features", `Quick, test_version_o0_stays_nothing);
    ("versions: head excludes post-head fixes", `Quick, test_head_excludes_post_head);
    ("versions: commit ids unique", `Quick, test_commit_ids_unique);
    ("versions: commit id collisions refused", `Quick, test_commit_id_collision_detected);
    ("versions: post-head commits are a suffix", `Quick, test_post_head_commits_are_suffix);
    ("versions: commits carry metadata", `Quick, test_commits_carry_metadata);
    ("versions: HEAD features = default features", `Quick, test_head_features_match_default);
    ("features: designed HEAD asymmetries", `Quick, test_designed_head_traits);
    ("features: post-head fixes apply", `Quick, test_post_head_fixes_apply);
    ("pipeline: O0 schedule", `Quick, test_schedule_o0_trivial);
    ("pipeline: designed stage order", `Quick, test_schedule_contains_designed_order);
    ("pipeline: llvm late function-dce", `Quick, test_schedule_llvm_has_late_fdce);
    ("compile: all configs validate", `Quick, test_compile_validates_all_configs);
    ("compile: foldable code shrinks", `Quick, test_higher_levels_never_slower_code);
  ]
  @ qcheck_tests
