(* Tests for Dce_support: the deterministic PRNG and list utilities. *)

open Helpers
module Rng = Dce_support.Rng
module Listx = Dce_support.Listx

let test_determinism () =
  let a = Rng.make 42 and b = Rng.make 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_different_seeds () =
  let a = Rng.make 1 and b = Rng.make 2 in
  Alcotest.(check bool) "different streams" false (Rng.bits64 a = Rng.bits64 b)

let test_split_independent () =
  let parent = Rng.make 7 in
  let child = Rng.split parent in
  (* consuming the child does not affect the parent's future stream *)
  let parent2 = Rng.make 7 in
  let _ = Rng.split parent2 in
  for _ = 1 to 10 do
    ignore (Rng.bits64 child)
  done;
  Alcotest.(check int64) "parent unaffected by child draws" (Rng.bits64 parent2) (Rng.bits64 parent)

let test_copy () =
  let a = Rng.make 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_int_bounds () =
  let r = Rng.make 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_int_in_bounds () =
  let r = Rng.make 3 in
  for _ = 1 to 1000 do
    let v = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_int_invalid () =
  let r = Rng.make 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_choose () =
  let r = Rng.make 5 in
  for _ = 1 to 100 do
    let v = Rng.choose r [ 1; 2; 3 ] in
    Alcotest.(check bool) "member" true (List.mem v [ 1; 2; 3 ])
  done

let test_weighted () =
  let r = Rng.make 5 in
  (* zero-weight entries are never picked *)
  for _ = 1 to 200 do
    let v = Rng.weighted r [ (0, "never"); (1, "always") ] in
    Alcotest.(check string) "only positive weights" "always" v
  done

let test_weighted_distribution () =
  let r = Rng.make 11 in
  let hits = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    if Rng.weighted r [ (3, true); (1, false) ] then incr hits
  done;
  let ratio = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "roughly 3:1" true (ratio > 0.68 && ratio < 0.82)

let test_shuffle_permutation () =
  let r = Rng.make 17 in
  let xs = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let ys = Rng.shuffle r xs in
  Alcotest.(check (list int)) "same multiset" xs (List.sort compare ys)

let test_sample () =
  let r = Rng.make 23 in
  let s = Rng.sample r 3 [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "3 drawn" 3 (List.length s);
  Alcotest.(check int) "distinct" 3 (List.length (Listx.uniq s))

let test_chance_extremes () =
  let r = Rng.make 3 in
  Alcotest.(check bool) "p=0 never" false (Rng.chance r 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.chance r 1.0)

(* ---- Listx ---- *)

(* Rng.int reduces through the *low* bits of the mixed SplitMix64 word (see
   the comment in rng.ml); this chi-square smoke test is the evidence that
   those bits are uniform for the small bounds the generator actually uses.
   Deterministic seeds, so the thresholds are exact, not flaky: the 99.9th
   percentile of chi-square with k-1 <= 9 degrees of freedom is < 28. *)
let test_int_chi_square () =
  List.iter
    (fun (seed, bound) ->
      let r = Rng.make seed in
      let n = 8000 in
      let counts = Array.make bound 0 in
      for _ = 1 to n do
        let v = Rng.int r bound in
        counts.(v) <- counts.(v) + 1
      done;
      let expected = float_of_int n /. float_of_int bound in
      let chi2 =
        Array.fold_left
          (fun acc c ->
            let d = float_of_int c -. expected in
            acc +. (d *. d /. expected))
          0.0 counts
      in
      if chi2 >= 28.0 then
        Alcotest.failf "chi-square %.1f too high for bound %d (seed %d)" chi2 bound seed)
    [ (11, 2); (12, 5); (13, 7); (14, 10); (15, 10) ]

let test_take_drop () =
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take over" [ 1; 2; 3 ] (Listx.take 9 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "drop" [ 3 ] (Listx.drop 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "drop over" [] (Listx.drop 9 [ 1; 2; 3 ]);
  Alcotest.(check (pair (list int) (list int))) "split" ([ 1 ], [ 2; 3 ])
    (Listx.split_at 1 [ 1; 2; 3 ])

let test_group_by () =
  let groups = Listx.group_by (fun x -> x mod 2) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list (pair int (list int))))
    "groups in first-seen order"
    [ (1, [ 1; 3; 5 ]); (0, [ 2; 4 ]) ]
    groups

let test_count_by () =
  Alcotest.(check (list (pair string int)))
    "counts" [ ("a", 2); ("b", 1) ]
    (Listx.count_by (fun s -> s) [ "a"; "b"; "a" ])

let test_uniq () =
  Alcotest.(check (list int)) "keeps first occurrences" [ 3; 1; 2 ] (Listx.uniq [ 3; 1; 3; 2; 1 ])

let test_percent () =
  Alcotest.(check (float 0.001)) "50%" 50.0 (Listx.percent 1 2);
  Alcotest.(check (float 0.001)) "zero whole" 0.0 (Listx.percent 1 0)

let qcheck_tests =
  [
    qtest ~count:200 "rng: int always within bound"
      QCheck2.Gen.(pair int (int_range 1 1000))
      (fun (seed, bound) ->
        let r = Rng.make seed in
        let v = Rng.int r bound in
        v >= 0 && v < bound);
    qtest ~count:200 "listx: take n ++ drop n = original"
      QCheck2.Gen.(pair small_nat (small_list int))
      (fun (n, xs) -> Listx.take n xs @ Listx.drop n xs = xs);
    qtest ~count:200 "listx: group_by preserves all elements"
      QCheck2.Gen.(small_list (int_range 0 5))
      (fun xs ->
        let regrouped = List.concat_map snd (Listx.group_by (fun x -> x) xs) in
        List.sort compare regrouped = List.sort compare xs);
  ]

let suite =
  [
    ("rng determinism", `Quick, test_determinism);
    ("rng seeds differ", `Quick, test_different_seeds);
    ("rng split independence", `Quick, test_split_independent);
    ("rng copy", `Quick, test_copy);
    ("rng int bounds", `Quick, test_int_bounds);
    ("rng int_in bounds", `Quick, test_int_in_bounds);
    ("rng invalid bound", `Quick, test_int_invalid);
    ("rng choose membership", `Quick, test_choose);
    ("rng weighted zero weight", `Quick, test_weighted);
    ("rng weighted distribution", `Quick, test_weighted_distribution);
    ("rng shuffle is a permutation", `Quick, test_shuffle_permutation);
    ("rng sample distinct", `Quick, test_sample);
    ("rng chance extremes", `Quick, test_chance_extremes);
    ("rng int low-bit uniformity (chi-square)", `Quick, test_int_chi_square);
    ("listx take/drop/split", `Quick, test_take_drop);
    ("listx group_by", `Quick, test_group_by);
    ("listx count_by", `Quick, test_count_by);
    ("listx uniq", `Quick, test_uniq);
    ("listx percent", `Quick, test_percent);
  ]
  @ qcheck_tests
