(* The multi-process campaign fabric: byte-identity of the merged output
   against the in-process engine at every (workers, jobs) grid point,
   journal interop in both directions across a torn journal, crash
   containment when a worker process dies mid-chunk, and the cross-process
   journal lock.

   Also home to the Metrics.merge algebra tests (associativity, permutation
   invariance, wire round-trip) — the properties the fabric's farewell
   message depends on when it folds per-process accumulators into one
   campaign summary. *)

open Helpers
module Campaign = Dce_campaign
module Engine = Campaign.Engine
module Fabric = Campaign.Fabric
module Journal = Campaign.Journal
module Json = Campaign.Json
module Metrics = Campaign.Metrics
module Stats = Dce_report.Stats

let temp_journal = Suite_campaign.temp_journal
let truncate_journal = Suite_campaign.truncate_journal
let toy_codec = { Engine.encode = (fun i -> Json.Int i); decode = Json.int_exn }

(* ------------------------------------------------------------------ *)
(* determinism across the processes x domains grid                     *)
(* ------------------------------------------------------------------ *)

let test_fabric_toy_grid_determinism () =
  let runner ctx i = Engine.stage ctx "toy" (fun () -> (i * 7) + 1) in
  let baseline = Engine.run ~jobs:1 ~count:17 runner in
  List.iter
    (fun (workers, jobs) ->
      let r = Fabric.run ~codec:toy_codec ~workers ~jobs ~count:17 runner in
      Alcotest.(check bool)
        (Printf.sprintf "outcomes at workers=%d jobs=%d" workers jobs)
        true
        (r.Engine.outcomes = baseline.Engine.outcomes);
      Alcotest.(check (list pass)) "no quarantine" [] r.Engine.quarantine)
    [ (2, 1); (2, 3); (4, 1); (4, 3) ]

let test_fabric_static_scheduling_identical () =
  let runner ctx i = Engine.stage ctx "toy" (fun () -> i * i) in
  let baseline = Engine.run ~jobs:1 ~count:13 runner in
  let r =
    Fabric.run ~codec:toy_codec ~scheduling:`Static ~workers:3 ~jobs:2 ~count:13 runner
  in
  Alcotest.(check bool) "static outcomes identical" true
    (r.Engine.outcomes = baseline.Engine.outcomes)

(* Real campaign modes: the merged report must be byte-identical.  The
   corpus codec regenerates traces on decode (timings are measurements, not
   results), so we compare the derived reports — exactly what the resume
   tests compare, and exactly what the user sees. *)

let corpus_report c =
  let stats = Campaign.Corpus.stats c in
  String.concat ""
    [
      Stats.prevalence stats;
      Stats.table1 stats;
      Stats.table2 stats;
      Stats.differential_summary stats;
      Stats.attribution_table stats;
    ]

let test_fabric_corpus_report_identical () =
  let solo = Campaign.Corpus.run ~jobs:1 ~seed:4242 ~count:8 () in
  let grid = Campaign.Corpus.run ~workers:2 ~jobs:2 ~seed:4242 ~count:8 () in
  Alcotest.(check string) "corpus report byte-identical" (corpus_report solo)
    (corpus_report grid);
  Alcotest.(check int) "no quarantine" 0 (List.length grid.Campaign.Corpus.c_quarantine)

let test_fabric_size_report_identical () =
  let solo = Campaign.Oracle_campaign.run_size ~jobs:1 ~seed:4242 ~count:8 () in
  let grid = Campaign.Oracle_campaign.run_size ~workers:2 ~jobs:2 ~seed:4242 ~count:8 () in
  Alcotest.(check string) "size report byte-identical"
    (Campaign.Oracle_campaign.size_report solo)
    (Campaign.Oracle_campaign.size_report grid);
  Alcotest.(check bool) "size findings identical" true
    (Campaign.Oracle_campaign.size_findings solo = Campaign.Oracle_campaign.size_findings grid)

(* ------------------------------------------------------------------ *)
(* journal interop: fabric <-> engine, across a torn journal           *)
(* ------------------------------------------------------------------ *)

let test_fabric_torn_journal_resumes_in_engine () =
  let path = temp_journal () in
  let runner ctx i = Engine.stage ctx "toy" (fun () -> i + 100) in
  let r1 = Fabric.run ~journal:path ~codec:toy_codec ~seed:7 ~workers:2 ~jobs:2 ~count:10 runner in
  truncate_journal path ~cases:6;
  let executed = ref 0 in
  let r2 =
    Engine.run ~journal:path ~codec:toy_codec ~seed:7 ~jobs:1 ~count:10 (fun ctx i ->
        incr executed;
        runner ctx i)
  in
  Alcotest.(check int) "six cases restored from the fabric journal" 6 r2.Engine.resumed;
  Alcotest.(check int) "four cases re-executed" 4 !executed;
  Alcotest.(check bool) "outcomes identical" true (r1.Engine.outcomes = r2.Engine.outcomes);
  Sys.remove path

let test_engine_torn_journal_resumes_in_fabric () =
  let path = temp_journal () in
  let runner ctx i = Engine.stage ctx "toy" (fun () -> i + 100) in
  let r1 = Engine.run ~journal:path ~codec:toy_codec ~seed:7 ~jobs:1 ~count:10 runner in
  truncate_journal path ~cases:7;
  let r2 =
    Fabric.run ~journal:path ~codec:toy_codec ~seed:7 ~workers:4 ~jobs:3 ~count:10 runner
  in
  Alcotest.(check int) "seven cases restored from the engine journal" 7 r2.Engine.resumed;
  Alcotest.(check bool) "outcomes identical" true (r1.Engine.outcomes = r2.Engine.outcomes);
  (* the rewritten journal is complete: a fresh fabric run replays everything *)
  let r3 =
    Fabric.run ~journal:path ~codec:toy_codec ~seed:7 ~workers:2 ~jobs:1 ~count:10 runner
  in
  Alcotest.(check int) "all restored on the third run" 10 r3.Engine.resumed;
  Alcotest.(check bool) "outcomes still identical" true
    (r1.Engine.outcomes = r3.Engine.outcomes);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* crash containment: a worker process dying mid-chunk                 *)
(* ------------------------------------------------------------------ *)

let test_fabric_killed_worker_contained () =
  (* case 3 is a poison pill: it kills whichever worker process picks it up.
     First death re-queues it; the second death quarantines it (stage
     "fabric"), and every other case must still complete normally. *)
  let runner ctx i =
    Engine.stage ctx "toy" (fun () ->
        if i = 3 && Fabric.in_worker () then Unix._exit 7;
        i + 100)
  in
  let r = Fabric.run ~codec:toy_codec ~workers:2 ~jobs:1 ~count:12 runner in
  (match r.Engine.quarantine with
   | [ q ] ->
     Alcotest.(check int) "poison-pill case quarantined" 3 q.Engine.q_case;
     Alcotest.(check string) "blamed on the fabric" "fabric" q.Engine.q_stage;
     Alcotest.(check bool) "classified as a crash" true (q.Engine.q_kind = Engine.Crash);
     Alcotest.(check bool) "error names the worker death" true
       (contains q.Engine.q_error "worker process died")
   | qs -> Alcotest.failf "expected exactly the poison pill quarantined, got %d" (List.length qs));
  Array.iteri
    (fun i o ->
      if i <> 3 then
        match o with
        | Engine.Done v -> Alcotest.(check int) (Printf.sprintf "case %d result" i) (i + 100) v
        | Engine.Crashed _ -> Alcotest.failf "case %d must not be collateral damage" i)
    r.Engine.outcomes;
  match r.Engine.metrics.Metrics.fabric with
  | Some f ->
    Alcotest.(check int) "two worker deaths" 2 f.Metrics.f_deaths;
    Alcotest.(check int) "one case reassigned" 1 f.Metrics.f_reassigned
  | None -> Alcotest.fail "fabric counters missing"

(* ------------------------------------------------------------------ *)
(* fabric counters and edge cases                                      *)
(* ------------------------------------------------------------------ *)

let test_fabric_counters_reported () =
  let runner ctx i = Engine.stage ctx "toy" (fun () -> i) in
  let r = Fabric.run ~codec:toy_codec ~workers:2 ~jobs:3 ~count:12 runner in
  (match r.Engine.metrics.Metrics.fabric with
   | Some f ->
     Alcotest.(check int) "workers" 2 f.Metrics.f_workers;
     Alcotest.(check int) "jobs per worker" 3 f.Metrics.f_jobs;
     Alcotest.(check bool) "chunks dispatched" true (f.Metrics.f_chunks >= 2);
     Alcotest.(check int) "per-worker cases sum to the corpus" 12
       (List.fold_left ( + ) 0 f.Metrics.f_cases_per_worker);
     Alcotest.(check int) "no deaths" 0 f.Metrics.f_deaths
   | None -> Alcotest.fail "fabric counters missing");
  (* workers = 1 is Engine.run: no process forked, no fabric counters *)
  let solo = Fabric.run ~codec:toy_codec ~workers:1 ~jobs:1 ~count:3 runner in
  Alcotest.(check bool) "no fabric counters at workers=1" true
    (solo.Engine.metrics.Metrics.fabric = None)

let test_fabric_edge_cases () =
  let runner ctx i = Engine.stage ctx "toy" (fun () -> i) in
  (* more workers than cases: only as many processes as there is work *)
  let r = Fabric.run ~codec:toy_codec ~workers:8 ~jobs:1 ~count:3 runner in
  Alcotest.(check bool) "tiny corpus completes" true
    (r.Engine.outcomes = [| Engine.Done 0; Engine.Done 1; Engine.Done 2 |]);
  (match r.Engine.metrics.Metrics.fabric with
   | Some f -> Alcotest.(check int) "forks capped by the work" 3 f.Metrics.f_workers
   | None -> Alcotest.fail "fabric counters missing");
  (* a chunk bigger than the corpus is one chunk *)
  let r = Fabric.run ~codec:toy_codec ~chunk:64 ~workers:2 ~jobs:1 ~count:5 runner in
  Alcotest.(check int) "oversized chunk" 5 (Array.length r.Engine.outcomes);
  (* the empty campaign *)
  let r = Fabric.run ~codec:toy_codec ~workers:4 ~jobs:2 ~count:0 runner in
  Alcotest.(check int) "empty corpus" 0 (Array.length r.Engine.outcomes);
  (* invalid grids are rejected up front *)
  List.iter
    (fun f ->
      match f () with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Fabric.run ~workers:2 ~jobs:1 ~count:3 runner);  (* no codec *)
      (fun () -> Fabric.run ~codec:toy_codec ~workers:0 ~jobs:1 ~count:3 runner);
      (fun () -> Fabric.run ~codec:toy_codec ~chunk:0 ~workers:2 ~jobs:1 ~count:3 runner);
    ]

(* ------------------------------------------------------------------ *)
(* the cross-process journal lock (satellite: fork-based lockf test)   *)
(* ------------------------------------------------------------------ *)

(* Journal.open_append guards against concurrent writers twice over: an
   in-process registry (same-process double open) and Unix.lockf (another
   process).  The in-process test lives in suite_supervision; this one
   exercises the lockf half with a real second process.  The child forks
   BEFORE the parent opens — fork copies the parent's registry, so forking
   after would trip the in-process check and never reach lockf. *)
let test_journal_lock_cross_process () =
  let path = temp_journal () in
  let header = { Journal.h_campaign = "fork-lock-test"; h_seed = 1; h_count = 2 } in
  let try_open_in_child ~expect_locked =
    let r, w = Unix.pipe ~cloexec:false () in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      Unix.close w;
      (* wait for the parent's go signal, then race for the lock *)
      ignore (Unix.read r (Bytes.create 1) 0 1);
      let code =
        match Journal.open_append ~path header with
        | j ->
          Journal.close j;
          if expect_locked then 1 else 0
        | exception Failure msg ->
          if expect_locked && Helpers.contains msg "locked" then 0 else 1
      in
      Unix._exit code
    | pid ->
      Unix.close r;
      (pid, w)
  in
  (* child 1 forks while the journal is closed, then attempts an open while
     the parent holds it: lockf must refuse, journal intact *)
  let pid1, w1 = try_open_in_child ~expect_locked:true in
  let j = Journal.open_append ~path header in
  Journal.append j (Json.Obj [ ("case", Json.Int 0) ]);
  ignore (Unix.write w1 (Bytes.of_string "g") 0 1);
  let _, status1 = Unix.waitpid [] pid1 in
  Alcotest.(check bool) "second process refused while the journal is live" true
    (status1 = Unix.WEXITED 0);
  Journal.append j (Json.Obj [ ("case", Json.Int 1) ]);
  Journal.close j;
  (match Journal.load ~path with
   | Some (h, cases, 0) ->
     Alcotest.(check bool) "header intact after the refused open" true (h = header);
     Alcotest.(check int) "both cases intact after the refused open" 2 (List.length cases)
   | _ -> Alcotest.fail "journal unreadable after the cross-process lock race");
  (* child 2: after close the lock is gone and another process may resume *)
  let pid2, w2 = try_open_in_child ~expect_locked:false in
  ignore (Unix.write w2 (Bytes.of_string "g") 0 1);
  let _, status2 = Unix.waitpid [] pid2 in
  Alcotest.(check bool) "open succeeds from another process after close" true
    (status2 = Unix.WEXITED 0);
  Unix.close w1;
  Unix.close w2;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Metrics.merge algebra (satellite: merge + percentile properties)    *)
(* ------------------------------------------------------------------ *)

let zero_counters =
  {
    Dce_compiler.Passmgr.meminfo_hits = 0;
    meminfo_misses = 0;
    cfg_hits = 0;
    cfg_misses = 0;
    dom_hits = 0;
    dom_misses = 0;
  }

let acc samples ~retries ~recovered =
  let t = Metrics.create () in
  List.iter (fun (stage, dt) -> Metrics.record t stage dt) samples;
  for _ = 1 to retries do
    Metrics.retried t
  done;
  for _ = 1 to recovered do
    Metrics.recovered t
  done;
  t

let summarize t = Metrics.summarize ~cases:9 ~wall:2.0 ~cache:zero_counters t

let abc () =
  ( acc [ ("compile", 0.5); ("exec", 0.125); ("compile", 0.25) ] ~retries:2 ~recovered:1,
    acc [ ("exec", 0.75); ("compile", 0.0625) ] ~retries:1 ~recovered:0,
    acc [ ("analyze", 1.5); ("compile", 0.375); ("exec", 0.25) ] ~retries:0 ~recovered:0 )

let test_metrics_merge_associative () =
  let a, b, c = abc () in
  let left = summarize (Metrics.merge (Metrics.merge a b) c) in
  let right = summarize (Metrics.merge a (Metrics.merge b c)) in
  Alcotest.(check bool) "merge is associative up to summarize" true (left = right);
  Alcotest.(check int) "retries survive the merge" 3 left.Metrics.retries;
  Alcotest.(check int) "recoveries survive the merge" 1 left.Metrics.recovered

let test_metrics_merge_permutation_invariant () =
  let a, b, c = abc () in
  let reference = summarize (Metrics.merge a (Metrics.merge b c)) in
  List.iter
    (fun (name, merged) ->
      Alcotest.(check bool) name true (summarize merged = reference))
    [
      ("c (a b)", Metrics.merge c (Metrics.merge a b));
      ("(b a) c", Metrics.merge (Metrics.merge b a) c);
      ("b (c a)", Metrics.merge b (Metrics.merge c a));
    ];
  (* merge is functional: the inputs are unchanged by all of the above *)
  let a', b', c' = abc () in
  Alcotest.(check bool) "inputs unchanged" true
    (summarize a = summarize a' && summarize b = summarize b' && summarize c = summarize c')

let test_metrics_wire_round_trip () =
  let a, b, _ = abc () in
  let t = Metrics.merge a b in
  let back = Metrics.of_json (Metrics.to_json t) in
  Alcotest.(check bool) "wire round trip preserves the summary" true
    (summarize back = summarize t);
  match Metrics.of_json (Json.Obj [ ("samples", Json.Int 3) ]) with
  | _ -> Alcotest.fail "malformed wire record must raise"
  | exception Failure _ -> ()

let test_metrics_percentile_stability () =
  Alcotest.(check (float 0.)) "empty array" 0. (Metrics.percentile [||] 0.5);
  Alcotest.(check (float 0.)) "singleton p50" 42. (Metrics.percentile [| 42. |] 0.5);
  Alcotest.(check (float 0.)) "singleton p99" 42. (Metrics.percentile [| 42. |] 0.99);
  let ten = Array.init 10 (fun i -> float_of_int (i + 1)) in
  (* nearest-rank on 1..10: p50 -> rank 5, p90 -> rank 9, p99 -> rank 10 *)
  Alcotest.(check (float 0.)) "p50 of 1..10" 5. (Metrics.percentile ten 0.5);
  Alcotest.(check (float 0.)) "p90 of 1..10" 9. (Metrics.percentile ten 0.9);
  Alcotest.(check (float 0.)) "p99 of 1..10" 10. (Metrics.percentile ten 0.99);
  Alcotest.(check (float 0.)) "p0 clamps to the smallest sample" 1.
    (Metrics.percentile ten 0.);
  (* percentiles of merged accumulators equal percentiles of the union:
     what makes per-process summaries independent of merge order *)
  let a, b, c = abc () in
  let union = summarize (Metrics.merge a (Metrics.merge b c)) in
  let compile =
    List.find (fun s -> s.Metrics.ss_stage = "compile") union.Metrics.stages
  in
  Alcotest.(check int) "compile samples pooled" 4 compile.Metrics.ss_samples;
  Alcotest.(check (float 1e-9)) "compile p50 from the pooled sorted samples" 0.25
    compile.Metrics.ss_p50;
  Alcotest.(check (float 1e-9)) "compile p99 is the pooled max" 0.5 compile.Metrics.ss_p99

(* Must stay the LAST test of this suite (and the suite itself runs first in
   test_main): it spawns a domain, after which OCaml forbids the fork every
   multi-process fabric run needs. *)
let test_fabric_refuses_after_domains () =
  let warm = Engine.run ~jobs:2 ~count:4 (fun _ i -> i) in
  Alcotest.(check int) "warm-up engine run completed" 4 (Array.length warm.Engine.outcomes);
  Alcotest.(check bool) "domain creation recorded" true (Engine.domains_ever_spawned ());
  match Fabric.run ~codec:toy_codec ~workers:2 ~jobs:1 ~count:4 (fun _ i -> i) with
  | _ -> Alcotest.fail "Fabric.run should refuse to fork after domains existed"
  | exception Failure msg ->
    Alcotest.(check bool)
      "diagnosis names the fork-after-domains ban" true
      (contains msg "after worker domains have been spawned")

(* ------------------------------------------------------------------ *)
(* the mkdir_p fork race (satellite bugfix regression test)            *)
(* ------------------------------------------------------------------ *)

(* Two fabric workers creating the same run directory used to race:
   both see it missing, both mkdir, the loser got EEXIST only at the final
   component.  Now EEXIST is tolerated at every component, so concurrent
   creators all succeed. *)
let test_mkdir_p_concurrent_race () =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dce-mkdirp-race-%d" (Unix.getpid ()))
  in
  let deep = List.fold_left Filename.concat root [ "a"; "b"; "c"; "d" ] in
  let spawn () =
    let r, w = Unix.pipe ~cloexec:false () in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      Unix.close w;
      (* wait for the parent's go signal so every creation really races *)
      ignore (Unix.read r (Bytes.create 1) 0 1);
      let code = match Dce_support.Fsx.mkdir_p deep with () -> 0 | exception _ -> 1 in
      Unix._exit code
    | pid ->
      Unix.close r;
      (pid, w)
  in
  let children = List.init 4 (fun _ -> spawn ()) in
  List.iter (fun (_, w) -> ignore (Unix.write w (Bytes.of_string "g") 0 1)) children;
  List.iter
    (fun (pid, w) ->
      let _, status = Unix.waitpid [] pid in
      Unix.close w;
      Alcotest.(check bool) "racing mkdir_p child succeeded" true (status = Unix.WEXITED 0))
    children;
  Alcotest.(check bool) "directory exists afterwards" true (Sys.is_directory deep);
  (* EEXIST tolerance must not paper over a plain file in the way *)
  let file = Filename.concat root "plain" in
  let oc = open_out file in
  close_out oc;
  (match Dce_support.Fsx.mkdir_p file with
   | () -> Alcotest.fail "mkdir_p over a plain file should fail"
   | exception Sys_error _ -> ());
  match Dce_support.Fsx.mkdir_p (Filename.concat file "x") with
  | () -> Alcotest.fail "mkdir_p through a plain file should fail"
  | exception Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* the repair verification campaign across the fabric grid             *)
(* ------------------------------------------------------------------ *)

let test_fabric_verify_report_identical () =
  let compilers =
    [
      (Dce_compiler.Gcc_sim.compiler, "gcc-sim"); (Dce_compiler.Llvm_sim.compiler, "llvm-sim");
    ]
  in
  let report workers jobs =
    let v =
      Dce_repair.Verify.campaign ~workers ~jobs ~name:"fabric-verify" ~compilers ~seed:4242
        ~count:6 ()
    in
    Json.to_string (Campaign.Run_store.report_to_json v.Dce_repair.Verify.vy_report)
  in
  let solo = report 1 1 in
  Alcotest.(check string) "verify report byte-identical at workers=2" solo (report 2 1);
  Alcotest.(check string) "verify report byte-identical at workers=2 jobs=2" solo (report 2 2)

let suite =
  [
    Alcotest.test_case "fabric: toy grid determinism" `Quick test_fabric_toy_grid_determinism;
    Alcotest.test_case "fabric: static scheduling identical" `Quick
      test_fabric_static_scheduling_identical;
    Alcotest.test_case "fabric: corpus report identical" `Slow test_fabric_corpus_report_identical;
    Alcotest.test_case "fabric: size report identical" `Slow test_fabric_size_report_identical;
    Alcotest.test_case "fabric: torn journal resumes in engine" `Quick
      test_fabric_torn_journal_resumes_in_engine;
    Alcotest.test_case "fabric: engine journal resumes in fabric" `Quick
      test_engine_torn_journal_resumes_in_fabric;
    Alcotest.test_case "fabric: killed worker contained" `Quick
      test_fabric_killed_worker_contained;
    Alcotest.test_case "fabric: counters reported" `Quick test_fabric_counters_reported;
    Alcotest.test_case "fabric: edge cases" `Quick test_fabric_edge_cases;
    Alcotest.test_case "journal: cross-process lockf" `Quick test_journal_lock_cross_process;
    Alcotest.test_case "fsx: mkdir_p concurrent fork race" `Quick test_mkdir_p_concurrent_race;
    Alcotest.test_case "fabric: verify report identical" `Slow
      test_fabric_verify_report_identical;
    Alcotest.test_case "metrics: merge associative" `Quick test_metrics_merge_associative;
    Alcotest.test_case "metrics: merge permutation-invariant" `Quick
      test_metrics_merge_permutation_invariant;
    Alcotest.test_case "metrics: wire round trip" `Quick test_metrics_wire_round_trip;
    Alcotest.test_case "metrics: percentile stability" `Quick test_metrics_percentile_stability;
    (* keep last: poisons the process for fork (see its comment) *)
    Alcotest.test_case "fabric: refuses to fork after domains" `Quick
      test_fabric_refuses_after_domains;
  ]
