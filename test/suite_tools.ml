(* Tests for the tooling libraries: the reducer, the bisector, and the
   reporting pipeline. *)

open Helpers
module C = Dce_compiler
module Core = Dce_core
module Ir = Dce_ir.Ir

(* ---- reduce ---- *)

let listing4_instrumented =
  lazy
    (Core.Instrument.program
       (parse {|
static int a = 0;
static int noise1 = 3;
int noise2[4] = {1, 2, 3, 4};
static int pad(int x) { return x * noise1; }
int main(void) {
  int t = pad(2);
  use(t);
  if (noise2[1] > 100) { use(7); }
  if (a) { use(1); }
  use(noise2[2]);
  a = 0;
  return 0;
}
|}))

let gcc_o3 = { Core.Differential.compiler = C.Gcc_sim.compiler; level = C.Level.O3; version = None }
let llvm_o3 = { Core.Differential.compiler = C.Llvm_sim.compiler; level = C.Level.O3; version = None }

let find_diff_marker prog =
  let g = Core.Differential.surviving gcc_o3 prog in
  let l = Core.Differential.surviving llvm_o3 prog in
  Ir.Iset.choose (Ir.Iset.diff g l)

let test_reduce_shrinks_and_preserves () =
  let prog = Lazy.force listing4_instrumented in
  let marker = find_diff_marker prog in
  let predicate =
    Dce_reduce.Reduce.marker_diff_predicate ~keep_missed_by:gcc_o3 ~eliminated_by:llvm_o3 ~marker
  in
  Alcotest.(check bool) "initially interesting" true (predicate prog);
  let r = Dce_reduce.Reduce.reduce ~max_tests:1500 ~predicate prog in
  Alcotest.(check bool) "shrank" true
    (r.Dce_reduce.Reduce.final_size < r.Dce_reduce.Reduce.initial_size);
  Alcotest.(check bool) "still interesting" true (predicate r.Dce_reduce.Reduce.program);
  (* the reduced program should be close to the paper's Listing 4 skeleton:
     no helper function, few globals *)
  Alcotest.(check bool) "helpers removed" true
    (List.length r.Dce_reduce.Reduce.program.Dce_minic.Ast.p_funcs <= 2)

let test_reduce_rejects_uninteresting_start () =
  let prog = parse "int main(void) { return 0; }" in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dce_reduce.Reduce.reduce ~predicate:(fun _ -> false) prog);
       false
     with Invalid_argument _ -> true)

let test_reduce_respects_budget () =
  let prog = Lazy.force listing4_instrumented in
  let marker = find_diff_marker prog in
  let predicate =
    Dce_reduce.Reduce.marker_diff_predicate ~keep_missed_by:gcc_o3 ~eliminated_by:llvm_o3 ~marker
  in
  let r = Dce_reduce.Reduce.reduce ~max_tests:25 ~predicate prog in
  Alcotest.(check bool) "budget respected" true (r.Dce_reduce.Reduce.tests_run <= 25)

(* ---- bisect ---- *)

let test_bisect_vectorizer_regression () =
  (* Listing 9e: introduced by the -O3 vectorization commit *)
  let prog = Core.Instrument.program (parse {|
static int a[2];
static int b;
static int *c[2];
int main(void) {
  for (b = 0; b < 2; b++) { c[b] = &a[1]; }
  if (!c[0]) { use(1); }
  return 0;
}
|}) in
  (* find the marker in the if body *)
  let truth =
    match Core.Ground_truth.compute prog with
    | Core.Ground_truth.Valid t -> t
    | Core.Ground_truth.Rejected r -> Alcotest.failf "rejected: %s" r
  in
  let missed =
    Ir.Iset.inter (Core.Differential.surviving gcc_o3 prog) truth.Core.Ground_truth.dead
  in
  let marker = Ir.Iset.choose missed in
  (match Dce_bisect.Bisect.find_regression C.Gcc_sim.compiler C.Level.O3 prog ~marker with
   | Dce_bisect.Bisect.Regression r ->
     Alcotest.(check string) "vectorizer commit blamed" "Loop Transformations"
       r.Dce_bisect.Bisect.offending.C.Version.component;
     Alcotest.(check bool) "summary mentions vect" true
       (contains r.Dce_bisect.Bisect.offending.C.Version.summary "vect")
   | Dce_bisect.Bisect.Always_missed -> Alcotest.fail "should be a regression"
   | Dce_bisect.Bisect.Not_missed -> Alcotest.fail "should be missed at head");
  (* linear search agrees with exponential *)
  match
    ( Dce_bisect.Bisect.find_regression ~search:`Linear C.Gcc_sim.compiler C.Level.O3 prog ~marker,
      Dce_bisect.Bisect.find_regression ~search:`Exponential C.Gcc_sim.compiler C.Level.O3 prog
        ~marker )
  with
  | Dce_bisect.Bisect.Regression a, Dce_bisect.Bisect.Regression b ->
    Alcotest.(check string) "same offending commit" a.Dce_bisect.Bisect.offending.C.Version.id
      b.Dce_bisect.Bisect.offending.C.Version.id
  | _ -> Alcotest.fail "both searches must find the regression"

let test_bisect_not_missed () =
  let prog = Core.Instrument.program (parse "int main(void) { if (0) { use(1); } return 0; }") in
  match Dce_bisect.Bisect.find_regression C.Gcc_sim.compiler C.Level.O3 prog ~marker:0 with
  | Dce_bisect.Bisect.Not_missed -> ()
  | _ -> Alcotest.fail "front-end-foldable marker is not missed"

let test_bisect_always_missed () =
  (* an opaque runtime condition: no version ever eliminates it *)
  let prog =
    Core.Instrument.program
      (parse "int main(void) { if (ext(1) == 987654) { use(1); } return 0; }")
  in
  match Dce_bisect.Bisect.find_regression C.Gcc_sim.compiler C.Level.O3 prog ~marker:0 with
  | Dce_bisect.Bisect.Always_missed -> ()
  | _ -> Alcotest.fail "expected always-missed"

let test_component_table () =
  let history = C.Gcc_sim.compiler.C.Compiler.history in
  let some = Dce_support.Listx.take 3 history @ Dce_support.Listx.take 3 history in
  let rows = Dce_bisect.Bisect.component_table some in
  (* duplicates collapse *)
  let total = List.fold_left (fun a r -> a + r.Dce_bisect.Bisect.commits) 0 rows in
  Alcotest.(check int) "three unique commits" 3 total

(* ---- report/stats ---- *)

let test_stats_tables_render () =
  let outcomes =
    List.map
      (fun (p, _) -> (Core.Analysis.run p, p))
      (Dce_smith.Smith.generate_corpus ~seed:3 ~count:6)
  in
  let stats = Dce_report.Stats.collect outcomes in
  Alcotest.(check int) "six programs" 6 stats.Dce_report.Stats.programs;
  Alcotest.(check int) "ten configs" 10 (List.length stats.Dce_report.Stats.per_config);
  let t1 = Dce_report.Stats.table1 stats in
  Alcotest.(check bool) "table has all levels" true
    (contains t1 "-O0" && contains t1 "-O3" && contains t1 "-Os");
  Alcotest.(check bool) "prevalence text" true
    (contains (Dce_report.Stats.prevalence stats) "instrumented markers")

let test_tables_render () =
  let t = Dce_report.Tables.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "aligned" true (contains t "a    bb");
  Alcotest.(check string) "pct" "50.00%" (Dce_report.Tables.pct 1 2);
  Alcotest.(check string) "pct zero" "-" (Dce_report.Tables.pct 1 0)

let test_triage_classifies () =
  (* build findings from the Listing-4 program: gcc misses, llvm eliminates *)
  let raw = parse {|
static int a = 0;
int main(void) {
  if (a) { use(1); }
  a = 0;
  return 0;
}
|} in
  match Core.Analysis.run raw with
  | Core.Analysis.Rejected r -> Alcotest.failf "rejected: %s" r
  | Core.Analysis.Analyzed an ->
    let outcomes = [ (Core.Analysis.Analyzed an, raw) ] in
    let stats = Dce_report.Stats.collect outcomes in
    let programs = [| an.Core.Analysis.instrumented |] in
    let reports = Dce_report.Triage.triage ~programs stats.Dce_report.Stats.findings in
    Alcotest.(check int) "one report" 1 (List.length reports);
    let r = List.hd reports in
    Alcotest.(check string) "gcc report" "gcc-sim" r.Dce_report.Triage.r_compiler;
    Alcotest.(check string) "gva signature" "gva:flow-sensitive" r.Dce_report.Triage.r_signature;
    (* no post-head commit repairs gcc's flow-insensitivity: stays confirmed *)
    Alcotest.(check string) "confirmed" "confirmed"
      (Dce_report.Triage.status_name r.Dce_report.Triage.r_status)

let test_triage_duplicate_and_fixed () =
  (* uniform-array (9f) is in the known-bug DB -> duplicate *)
  let raw = parse {|
int i;
static int b[2] = {0, 0};
int main(void) {
  if (b[i]) { use(1); }
  return 0;
}
|} in
  (match Core.Analysis.run raw with
   | Core.Analysis.Rejected r -> Alcotest.failf "rejected: %s" r
   | Core.Analysis.Analyzed an ->
     let stats = Dce_report.Stats.collect [ (Core.Analysis.Analyzed an, raw) ] in
     let reports =
       Dce_report.Triage.triage ~programs:[| an.Core.Analysis.instrumented |]
         stats.Dce_report.Stats.findings
     in
     match List.find_opt (fun r -> r.Dce_report.Triage.r_compiler = "gcc-sim") reports with
     | Some r ->
       Alcotest.(check string) "duplicate of #80603" "duplicate"
         (Dce_report.Triage.status_name r.Dce_report.Triage.r_status)
     | None -> Alcotest.fail "expected a gcc report");
  (* the shift-range family is fixed by a post-head commit -> fixed *)
  let raw2 = parse {|
int main(void) {
  int f = ext(1) & 7 | 1;
  int d = f << 2;
  if (d) { if (f == 0) { use(1); } }
  return 0;
}
|} in
  match Core.Analysis.run raw2 with
  | Core.Analysis.Rejected r -> Alcotest.failf "rejected: %s" r
  | Core.Analysis.Analyzed an -> (
    let stats = Dce_report.Stats.collect [ (Core.Analysis.Analyzed an, raw2) ] in
    let reports =
      Dce_report.Triage.triage ~programs:[| an.Core.Analysis.instrumented |]
        stats.Dce_report.Stats.findings
    in
    match List.find_opt (fun r -> r.Dce_report.Triage.r_compiler = "gcc-sim") reports with
    | Some r ->
      Alcotest.(check string) "vrp shift signature" "vrp:shift-rule" r.Dce_report.Triage.r_signature;
      Alcotest.(check string) "fixed post-head" "fixed"
        (Dce_report.Triage.status_name r.Dce_report.Triage.r_status)
    | None -> Alcotest.fail "expected a gcc report")

(* ---- generate --out with nested directories (regression) ---- *)

let test_mkdir_p_nested () =
  (* `dce_hunt generate --out a/b` used a bare Sys.mkdir and failed whenever
     the parent did not exist; the CLI now goes through Fsx.mkdir_p *)
  let base = Filename.temp_file "dce_mkdirp" "" in
  Sys.remove base;
  let nested = Filename.concat (Filename.concat base "a") "b" in
  Dce_support.Fsx.mkdir_p nested;
  Alcotest.(check bool) "nested directory created" true
    (Sys.file_exists nested && Sys.is_directory nested);
  (* idempotent on an existing directory *)
  Dce_support.Fsx.mkdir_p nested;
  Alcotest.(check bool) "still a directory" true (Sys.is_directory nested);
  (* a corpus file can be written inside, as generate does *)
  let f = Filename.concat nested "p0000.c" in
  let oc = open_out f in
  output_string oc "int main(void) { return 0; }\n";
  close_out oc;
  Alcotest.(check bool) "file written in new tree" true (Sys.file_exists f);
  Sys.remove f;
  Sys.rmdir nested;
  Sys.rmdir (Filename.concat base "a");
  Sys.rmdir base

let suite =
  [
    ("reduce: shrinks and preserves", `Slow, test_reduce_shrinks_and_preserves);
    ("reduce: rejects uninteresting start", `Quick, test_reduce_rejects_uninteresting_start);
    ("reduce: respects budget", `Quick, test_reduce_respects_budget);
    ("bisect: vectorizer regression (9e)", `Quick, test_bisect_vectorizer_regression);
    ("bisect: not missed", `Quick, test_bisect_not_missed);
    ("bisect: always missed", `Quick, test_bisect_always_missed);
    ("bisect: component table dedups", `Quick, test_component_table);
    ("stats: tables render", `Slow, test_stats_tables_render);
    ("tables: formatting", `Quick, test_tables_render);
    ("triage: classification (Listing 4)", `Quick, test_triage_classifies);
    ("triage: duplicate and fixed statuses", `Quick, test_triage_duplicate_and_fixed);
    ("fsx: mkdir_p nested out dir (generate regression)", `Quick, test_mkdir_p_nested);
  ]
